module QG = Query.Query_graph
module Bitset = Util.Bitset

(* ------------------------------------------------------------------ *)
(* Extension 1: join sampling                                          *)

let join_sampling (h : Harness.t) =
  let sample = Cardest.Join_sample.create h.Harness.db in
  let max_joins = 6 in
  let collect make_est =
    let by_joins = Array.make (max_joins + 1) [] in
    (* Per-query error lists compute in parallel; the serial replay in
       query order reproduces the original bin push order. *)
    let per_query =
      Harness.par_map h
        (fun (q : Harness.qctx) ->
          let est = make_est q in
          let tc = Harness.truth q in
          Array.to_list (QG.connected_subsets q.Harness.graph)
          |> List.filter_map (fun s ->
                 let joins = Bitset.cardinal s - 1 in
                 if joins > max_joins then None
                 else
                   Some
                     ( joins,
                       Util.Stat.signed_error
                         ~estimate:(Util.Stat.floored (est.Cardest.Estimator.subset s))
                         ~truth:(Util.Stat.floored (Cardest.True_card.card tc s)) )))
        h.Harness.queries
    in
    Array.iter
      (List.iter
         (fun (joins, err) -> by_joins.(joins) <- err :: by_joins.(joins)))
      per_query;
    by_joins
  in
  let pg = collect (fun q -> Harness.estimator h q "PostgreSQL") in
  let js =
    collect (fun q -> Cardest.Join_sample.estimator sample q.Harness.graph)
  in
  let row label data joins =
    let e = Array.of_list data.(joins) in
    if Array.length e = 0 then [ label; string_of_int joins; "-"; "-" ]
    else
      let wrong =
        Array.fold_left (fun a x -> if x >= 10.0 || x <= 0.1 then a + 1 else a) 0 e
      in
      [
        label;
        string_of_int joins;
        Util.Render.float_cell (Util.Stat.median e);
        Util.Render.percent_cell (Util.Stat.fraction wrong (Array.length e));
      ]
  in
  Util.Render.table
    ~title:
      "Extension 1: join sampling (10% sample of fact tables) vs PostgreSQL's\n\
       per-attribute statistics. Median signed error (est/true) by join count"
    ~header:[ "estimator"; "joins"; "median"; "frac off >=10x" ]
    (List.concat
       (List.init (max_joins + 1) (fun joins ->
            [ row "PostgreSQL" pg joins; row "join sampling" js joins ])))

(* ------------------------------------------------------------------ *)
(* Extension 2: adaptive re-optimization                               *)

(* domlint: safe [R1] — constant bucket edges, never written *)
let slowdown_buckets = [| 0.9; 1.1; 2.0; 10.0; 100.0 |]

let bucket_labels =
  [ "<0.9"; "[0.9,1.1)"; "[1.1,2)"; "[2,10)"; "[10,100)"; ">100" ]

let adaptive (h : Harness.t) =
  let engine = Exec.Engine_config.default_9_4 in
  let model = Cost.Cost_model.postgres in
  (* Every other query keeps the two full executions per query (one-shot
     and adaptive, both under the stock engine) affordable. *)
  let queries =
    Array.to_list h.Harness.queries |> List.filteri (fun i _ -> i mod 2 = 0)
  in
  Harness.with_index_config h Storage.Database.Pk_only (fun () ->
      let measure use_adaptive =
        queries
        |> Harness.par_map_list h (fun (q : Harness.qctx) ->
               let est = Harness.estimator h q "PostgreSQL" in
               let oracle = Harness.estimator h q "true" in
               let optimal_plan, _ =
                 Harness.plan_with h q ~est:oracle ~model
                   ~allow_nl:engine.Exec.Engine_config.allow_nl_join ()
               in
               let baseline =
                 Harness.execute h q ~plan:optimal_plan
                   ~size_est:oracle.Cardest.Estimator.subset ~engine
               in
               let actual =
                 if use_adaptive then
                   (Core.Adaptive.run ~db:h.Harness.db ~graph:q.Harness.graph
                      ~config:engine ~model ~estimator:est ())
                     .Core.Adaptive.result
                 else begin
                   let plan, _ =
                     Harness.plan_with h q ~est ~model
                       ~allow_nl:engine.Exec.Engine_config.allow_nl_join ()
                   in
                   Harness.execute h q ~plan ~size_est:est.Cardest.Estimator.subset
                     ~engine
                 end
               in
               if actual.Exec.Executor.timed_out then
                 float_of_int engine.Exec.Engine_config.work_limit
                 /. Exec.Engine_config.work_units_per_ms
                 /. Float.max 0.001 baseline.Exec.Executor.runtime_ms
               else
                 actual.Exec.Executor.runtime_ms
                 /. Float.max 0.001 baseline.Exec.Executor.runtime_ms)
      in
      let fractions values =
        let counts =
          Util.Stat.bucketize ~edges:slowdown_buckets
            (Array.of_list
               (List.map (fun v -> if v = infinity then 1e9 else v) values))
        in
        Array.to_list
          (Array.map (fun c -> Util.Stat.fraction c (List.length values)) counts)
      in
      let standard = fractions (measure false) in
      let adaptive = fractions (measure true) in
      Util.Render.table
        ~title:
          "Extension 2: adaptive re-optimization (probe bottom-most joins,\n\
           inject observed cardinalities, re-plan; <= 3 probes). Slowdown vs\n\
           the true-cardinality plan, PostgreSQL estimates, stock engine"
        ~header:("optimizer" :: bucket_labels)
        [
          "one-shot (paper's setup)" :: List.map Util.Render.percent_cell standard;
          "adaptive (3 probes)" :: List.map Util.Render.percent_cell adaptive;
        ])

(* ------------------------------------------------------------------ *)
(* Extension 3: the q-error plan-quality bound, checked empirically    *)

let qerror_bound (h : Harness.t) =
  (* The theorem's setting: C_mm over hash joins, no index access paths.
     For every query: the worst subexpression q-error of PostgreSQL's
     estimates, the actual cost ratio of the estimate-chosen plan, and
     the guaranteed q^4 bound. *)
  Harness.with_index_config h Storage.Database.No_indexes (fun () ->
      let rows = ref [] in
      let holds = ref 0 and total = ref 0 in
      let per_query =
        Harness.par_map h
          (fun (q : Harness.qctx) ->
            let est = Harness.estimator h q "PostgreSQL" in
            let truth = Harness.truth q in
            let qmax = Cardest.Qbound.worst_q ~truth est q.Harness.graph in
            let plan, _ =
              Harness.plan_with h q ~est ~model:Cost.Cost_model.cmm ()
            in
            let oracle = Harness.estimator h q "true" in
            let _, optimal =
              Harness.plan_with h q ~est:oracle ~model:Cost.Cost_model.cmm ()
            in
            let actual = Harness.true_cost h q plan /. Float.max 1e-9 optimal in
            let bound = Cardest.Qbound.cost_ratio_bound ~q:qmax in
            (qmax, actual, bound))
          h.Harness.queries
      in
      Array.iter
        (fun (qmax, actual, bound) ->
          incr total;
          if actual <= bound +. 1e-6 then incr holds;
          rows := (qmax, actual, bound) :: !rows)
        per_query;
      let actuals = Array.of_list (List.map (fun (_, a, _) -> a) !rows) in
      let slack =
        Array.of_list (List.map (fun (_, a, b) -> b /. Float.max 1.0 a) !rows)
      in
      Util.Render.table
        ~title:
          "Extension 3: the q-error plan-quality guarantee (paper ref [30]):\n\
           chosen-plan cost <= q^4 x optimal when all estimates are within q.\n\
           Cmm, hash joins, no indexes, PostgreSQL estimates"
        ~header:[ "metric"; "value" ]
        [
          [ "queries where the bound holds";
            Printf.sprintf "%d / %d" !holds !total ];
          [ "median actual cost ratio";
            Util.Render.float_cell (Util.Stat.median actuals) ];
          [ "max actual cost ratio";
            Util.Render.float_cell (Util.Stat.maximum actuals) ];
          [ "median bound slack (bound/actual)";
            Util.Render.float_cell (Util.Stat.median slack) ];
        ])

let render h = join_sampling h ^ "\n" ^ adaptive h ^ "\n" ^ qerror_bound h
