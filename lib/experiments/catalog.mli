(** The experiment catalog: every paper table/figure reproduction
    registered once with its canonical ID, a one-line description, and
    its render function. Both [jobench experiment] and [bench/main.exe]
    derive their experiment lists from here, so an experiment added to
    the catalog shows up in every driver. *)

type entry = {
  id : string;
  doc : string;
  render : Harness.t -> string;
}

val all : entry list
(** The 13 experiments, in the paper's order. *)

val ids : string list

val registry : entry Core.Registry.t

val find : string -> (entry, Core.Registry.error) result

val find_exn : string -> entry
(** Raises [Invalid_argument] listing the valid IDs. *)
