(* The re-optimization driver: execute the chosen plan bottom-up under
   the executor's checkpoint hook; whenever a materialized intermediate
   is off from its estimate by more than the q-error threshold, abandon
   the attempt, pin the materialized subtree as a plan fragment, re-plan
   the remaining joins with the feedback overlay as the estimator, and
   start over. Work spent on abandoned attempts is charged to the final
   result. Pinned fragments are paid for once, in the attempt where they
   were first materialized: the executor re-executes them on every later
   attempt (it has no tuple cache), but checkpoints fire in evaluation
   post-order, so a fragment's subtree occupies a contiguous work
   interval and the driver credits that interval back — modelling a
   system that keeps materialized intermediates around, as the paper's
   re-optimization scheme does. *)

module Bitset = Util.Bitset
module QG = Query.Query_graph

type outcome = {
  result : Exec.Executor.result;
  static_plan : Plan.t;
  final_plan : Plan.t;
  replans : int;
  wasted_work : int;
  reused_work : int;
  feedback : Feedback.t;
}

exception Replan of Bitset.t

(* Instant trace events: one per executor checkpoint the driver
   observes (a = exact rows, b = cumulative work) and one per tripped
   re-plan (a = replan ordinal, b = work wasted on the abandoned
   attempt). Disabled tracing costs one atomic load per event. *)
let ph_checkpoint = Obs.Trace.intern "reopt.checkpoint"
let ph_replan = Obs.Trace.intern "reopt.replan"

(* Checkpoints fire in evaluation post-order, one per materialized node
   — every node except an Index_nl_join's inner scan (never materialized
   on its own). *)
let rec checkpoint_count (p : Plan.t) =
  match p.Plan.op with
  | Plan.Scan _ -> 1
  | Plan.Join { algo = Plan.Index_nl_join; outer; inner = _ } ->
      1 + checkpoint_count outer
  | Plan.Join { outer; inner; _ } ->
      1 + checkpoint_count outer + checkpoint_count inner

(* Plan node sets form a laminar family, so the violating set names a
   unique subtree. *)
let rec subtree_with_set (p : Plan.t) set =
  if Bitset.equal p.Plan.set set then Some p
  else
    match p.Plan.op with
    | Plan.Scan _ -> None
    | Plan.Join { outer; inner; _ } -> (
        match subtree_with_set outer set with
        | Some _ as r -> r
        | None -> subtree_with_set inner set)

let run ~db ~graph ~config ~model ~(estimator : Cardest.Estimator.t)
    ?(threshold = 2.0) ?(max_replans = 8) ?plan0 ?pool ?(projections = []) () =
  if threshold < 1.0 then
    invalid_arg "Reopt.Driver.run: threshold must be >= 1.0";
  if max_replans < 0 then
    invalid_arg "Reopt.Driver.run: max_replans must be >= 0";
  let full = QG.full_set graph in
  let allow_nl = config.Exec.Engine_config.allow_nl_join in
  let search card = Planner.Search.create ~allow_nl ~model ~graph ~db ~card () in
  let fb = Feedback.create () in
  let static_plan =
    match plan0 with
    | Some p -> p
    | None ->
        fst (Planner.Dp.optimize (search estimator.Cardest.Estimator.subset))
  in
  Verify.ensure_plan
    ~what:(QG.name graph ^ "/reopt-static")
    graph static_plan;
  let wasted = ref 0 in
  let reused_total = ref 0 in
  let replans = ref 0 in
  (* Pairwise-disjoint executed subtrees, seeded into every re-planning
     DP at sunk cost. *)
  let fragments = ref [] in
  let rec attempt plan (est : Cardest.Estimator.t) =
    (* Checkpoint work values of this attempt in firing (post-order)
       sequence, most recent first; [0] is the pre-execution mark. When
       a pinned fragment's root checkpoint fires, its subtree's k
       checkpoints are the k most recent ones, so the work value k
       entries back marks the subtree's entry — the interval in between
       is a re-execution of already-paid-for work, credited back. *)
    let works = ref [ 0 ] in
    let reused = ref 0 in
    let frag_checkpoints =
      List.map
        (fun ((p : Plan.t), _) -> (p.Plan.set, checkpoint_count p))
        !fragments
    in
    let observe set ~rows ~work =
      Obs.Trace.event ph_checkpoint ~a:rows ~b:work;
      Feedback.record fb set ~rows;
      (match List.assoc_opt set frag_checkpoints with
      | Some k -> reused := !reused + work - List.nth !works (k - 1)
      | None -> ());
      works := work :: !works;
      (* Check join checkpoints only: a scan's cardinality becomes
         feedback but re-planning before the first join has nothing to
         pin, and the full set has nothing left to re-plan. [est] is the
         estimator that chose the running plan; every subgraph observed
         before this plan was chosen is exact in it (q = 1), so each
         distinct subgraph can trip at most one re-plan — the loop
         terminates even without the [max_replans] cap. *)
      if
        !replans < max_replans
        && Bitset.cardinal set >= 2
        && not (Bitset.equal set full)
      then begin
        let estimate = est.Cardest.Estimator.subset set in
        let q =
          Util.Stat.q_error
            ~estimate:(Util.Stat.floored estimate)
            ~truth:(Util.Stat.floored (float_of_int rows))
        in
        if q > threshold then begin
          wasted := !wasted + work - !reused;
          reused_total := !reused_total + !reused;
          raise (Replan set)
        end
      end
    in
    match
      Exec.Executor.run ~db ~graph ~config
        ~size_est:est.Cardest.Estimator.subset ~observe ?pool ~projections plan
    with
    | result ->
        (* A timed-out attempt's work is already capped at the limit —
           a floor, not a measurement — so the credit only applies to
           runs that finished. *)
        if not result.Exec.Executor.timed_out then
          reused_total := !reused_total + !reused
        else reused := 0;
        (result, plan, !reused)
    | exception Replan set ->
        incr replans;
        Obs.Trace.event ph_replan ~a:!replans ~b:!wasted;
        let fragment =
          match subtree_with_set plan set with
          | Some p -> p
          | None -> assert false
        in
        (* The new fragment may contain previously pinned ones (seeds
           appear atomically in re-planned trees); keep only the
           disjoint survivors. *)
        fragments :=
          (fragment, 0.0)
          :: List.filter
               (fun ((p : Plan.t), _) -> Bitset.disjoint p.Plan.set set)
               !fragments;
        let est' = Feedback.overlay ~fallback:estimator fb in
        let plan', _ =
          Planner.Dp.optimize_seeded
            (search est'.Cardest.Estimator.subset)
            ~seeds:!fragments
        in
        (* Every re-planned fragment goes through the sanitizer before it
           can execute, like any other enumerator output. *)
        Verify.ensure_plan
          ~what:(Printf.sprintf "%s/reopt-%d" (QG.name graph) !replans)
          graph plan';
        attempt plan' est'
  in
  let result, final_plan, final_reused = attempt static_plan estimator in
  let work = result.Exec.Executor.work - final_reused + !wasted in
  let result =
    {
      result with
      Exec.Executor.work;
      runtime_ms = float_of_int work /. Exec.Engine_config.work_units_per_ms;
    }
  in
  {
    result;
    static_plan;
    final_plan;
    replans = !replans;
    wasted_work = !wasted;
    reused_work = !reused_total;
    feedback = fb;
  }
