(* The feedback store: query-subgraph -> observed (exact) cardinality,
   filled by the executor's checkpoint hook and consumed as an overlay
   over an emulated system's estimator. Keyed with Bitset's own hash —
   this table sits on the observer hot path. *)

module Bitset = Util.Bitset
module Tbl = Hashtbl.Make (Bitset)

type t = { observed : float Tbl.t }

let create () = { observed = Tbl.create 64 }

let record t s ~rows = Tbl.replace t.observed s (float_of_int rows)

let observed t s = Tbl.find_opt t.observed s

let cardinal t = Tbl.length t.observed

let observations t =
  Tbl.fold (fun s c acc -> (s, c) :: acc) t.observed []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Order-independent content digest: summing per-entry hashes makes the
   digest independent of the Hashtbl's iteration order, so an overlay's
   name — which downstream caches may key on — depends only on what was
   observed, never on insertion history. *)
let digest table =
  Tbl.fold
    (fun s c acc ->
      let h = (Bitset.hash s * 1000003) lxor Hashtbl.hash c in
      (acc + h) land max_int)
    table 0

let overlay ~fallback t =
  (* Snapshot: an overlay answers from the store's state at creation
     time. A live view would leak the current execution's own
     observations back into the estimates it is being judged against,
     and every q-error check would trivially pass. *)
  let snap = Tbl.copy t.observed in
  let name =
    Printf.sprintf "feedback(%s)#%d.%x" fallback.Cardest.Estimator.name
      (Tbl.length snap) (digest snap)
  in
  let subset s =
    match Tbl.find_opt snap s with
    | Some c -> c
    | None -> fallback.Cardest.Estimator.subset s
  in
  let base r =
    match Tbl.find_opt snap (Bitset.singleton r) with
    | Some c -> c
    | None -> fallback.Cardest.Estimator.base r
  in
  { Cardest.Estimator.name; base; subset }
