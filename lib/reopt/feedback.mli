(** The feedback store of the mid-query re-optimization loop: a map from
    query subgraph (as a {!Util.Bitset} over the query's relations) to
    the cardinality the executor actually observed when it materialized
    that subgraph's intermediate result.

    The store is turned into an estimator with {!overlay}: observed
    subsets answer exactly, everything else delegates to the emulated
    system's estimator — the Perron-style "the optimizer knows precisely
    what it has already computed, and guesses only about the future". *)

type t

val create : unit -> t

val record : t -> Util.Bitset.t -> rows:int -> unit
(** Record (or overwrite) the observed cardinality of a subgraph. *)

val observed : t -> Util.Bitset.t -> float option

val cardinal : t -> int
(** Number of distinct subgraphs observed. *)

val observations : t -> (Util.Bitset.t * float) list
(** All observations, sorted by subset — deterministic regardless of
    observation order. *)

val overlay : fallback:Cardest.Estimator.t -> t -> Cardest.Estimator.t
(** An estimator answering exactly on the subsets observed {e so far}
    (snapshot semantics: later {!record} calls do not alter an existing
    overlay) and delegating every other subset to [fallback]. The
    instance name embeds the fallback's name plus an order-independent
    content digest of the snapshot, so caches keyed on estimator names
    stay sound across distinct feedback states. *)
