(** The mid-query re-optimization driver (Perron et al., PAPERS.md):
    closes the loop from execution back into planning.

    Execution proceeds bottom-up under the executor's checkpoint hook.
    At every materialized join result, the observed cardinality is
    compared against what the planning-time estimator predicted; when
    the q-error exceeds [threshold], the attempt is abandoned, the
    already-materialized subtree is pinned as an atomic plan fragment
    (sunk cost, exact cardinality), the remaining joins are re-enumerated
    with {!Planner.Dp.optimize_seeded} under a {!Feedback.overlay}
    estimator, the re-planned tree is passed through [lib/verify]'s plan
    sanitizer, and execution restarts.

    Determinism: the executor is deterministic, the DP enumerator is
    deterministic, and the feedback overlay answers from exact observed
    counts — so for a fixed (query, estimator, model, engine, threshold)
    the whole trajectory, including the number of re-plans, is a pure
    function of the database. Nothing here depends on wall-clock time or
    on scheduling. *)

type outcome = {
  result : Exec.Executor.result;
      (** Final execution result. [work] (and [runtime_ms]) include the
          work wasted on abandoned attempts, minus the credit for
          re-executing pinned fragments: a fragment is paid for once, in
          the attempt that materialized it, as in a system that keeps
          intermediates around. *)
  static_plan : Plan.t;  (** The round-0 plan (re-optimization off). *)
  final_plan : Plan.t;  (** The plan of the attempt that completed. *)
  replans : int;  (** Number of abandoned attempts. *)
  wasted_work : int;
      (** New (non-fragment) work units spent in abandoned attempts. *)
  reused_work : int;
      (** Work units credited back for fragment re-executions, measured
          from the contiguous post-order checkpoint interval each pinned
          subtree occupies. *)
  feedback : Feedback.t;  (** Every checkpoint observed across rounds. *)
}

val run :
  db:Storage.Database.t ->
  graph:Query.Query_graph.t ->
  config:Exec.Engine_config.t ->
  model:Cost.Cost_model.t ->
  estimator:Cardest.Estimator.t ->
  ?threshold:float ->
  ?max_replans:int ->
  ?plan0:Plan.t ->
  ?pool:Util.Domain_pool.t ->
  ?projections:(int * int) list ->
  unit ->
  outcome
(** Defaults: [threshold = 2.0] (a checkpoint twice or half its estimate
    trips a re-plan), [max_replans = 8]. [plan0] supplies the round-0
    plan (e.g. the pipeline's cached choice for this estimator/model);
    when absent the driver runs its own exhaustive DP. The non-index
    nested-loop join is allowed in re-planning exactly when [config]
    allows it at execution. [pool] turns on morsel-parallel execution
    inside every attempt: plan evaluation — and with it the post-order
    checkpoint sequence the feedback loop observes — stays on the
    calling domain, and each checkpoint sees the same cumulative work
    as the serial path (phase totals are order-independent sums), so
    re-planning decisions, q-errors, and the wasted/reused accounting
    are byte-identical at any worker count. Raises [Invalid_argument]
    when [threshold < 1.0] or [max_replans < 0]. *)
