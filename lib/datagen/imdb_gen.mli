(** Synthetic IMDB-like database generator.

    Produces the 21-table schema of the paper's IMDB snapshot, at reduced
    scale, with the statistical properties that make JOB hard for
    cardinality estimators:

    - a Zipfian popularity skew over movies shared by {e every} satellite
      table (cast, info, keywords, companies), so join fan-outs are
      positively correlated and the independence assumption
      underestimates multi-join results;
    - intra-table correlations (kind vs production year, gender vs role,
      genre vs keyword);
    - join-crossing correlations (movies of US production companies
      mostly carry the country info "USA"; popular movies have both high
      ratings and large casts), which no tested estimator can see;
    - heavy-tailed categorical distributions (country codes, genres,
      keywords) with most-common values that dwarf the tail.

    All draws come from a seeded {!Util.Prng}, so a given (seed, scale)
    always yields the identical database.

    Scale is paper-relative: 1.0 means the full 3.6 GB IMDB snapshot of
    the paper (~16.5 M rows here), and the default 0.02 is the ~330 k-row
    reference database every test and experiment golden was captured
    on. *)

type sizes = {
  titles : int;
  companies : int;
  persons : int;
  char_names : int;
  keywords : int;
  cast_info : int;
  movie_info : int;
  movie_companies : int;
  movie_keyword : int;
  movie_link : int;
  aka_name : int;
  aka_title : int;
  complete_cast : int;
  person_info : int;
}

val default_sizes : sizes
(** The reference sizes (~330 k rows across all tables) — what
    [sizes_of_scale reference_scale] yields. *)

val reference_scale : float
(** 0.02: the fraction of the paper's full snapshot the reference sizes
    model. *)

val full_scale_factor : float
(** 50.0 = [1 /. reference_scale]; [sizes_of_scale] multiplies by it. *)

val sizes_of_scale : float -> sizes
(** Sizes for a paper-relative scale ([default_sizes] scaled by
    [scale *. full_scale_factor]), floored at small minimums. *)

val generate : ?seed:int -> ?scale:float -> unit -> Storage.Database.t
(** Build the full 21-table database. Default [seed] is 42, default
    [scale] is [reference_scale]. The returned database has PK/FK
    metadata declared on every table; its index configuration starts as
    [Pk_only]. *)

val table_names : string list
(** The 21 table names, sorted. *)
