module Prng = Util.Prng
module Zipf = Util.Zipf
module Column = Storage.Column
module Table = Storage.Table

type sizes = {
  titles : int;
  companies : int;
  persons : int;
  char_names : int;
  keywords : int;
  cast_info : int;
  movie_info : int;
  movie_companies : int;
  movie_keyword : int;
  movie_link : int;
  aka_name : int;
  aka_title : int;
  complete_cast : int;
  person_info : int;
}

let default_sizes =
  {
    titles = 12_000;
    companies = 5_000;
    persons = 25_000;
    char_names = 12_000;
    keywords = 6_000;
    cast_info = 80_000;
    movie_info = 60_000;
    movie_companies = 30_000;
    movie_keyword = 40_000;
    movie_link = 4_000;
    aka_name = 8_000;
    aka_title = 3_000;
    complete_cast = 6_000;
    person_info = 20_000;
  }

(* Scale is expressed relative to the paper's full 3.6 GB IMDB snapshot:
   [default_sizes] (~330 k rows) stands in for 2 % of it, so
   [reference_scale] maps the reference sizes to scale 0.02 and scale
   1.0 is a 50x database (~16.5 M rows). *)
let reference_scale = 0.02
let full_scale_factor = 50.0 (* = 1 / reference_scale *)

let sizes_of_scale scale =
  let factor = scale *. full_scale_factor in
  let s base minimum = max minimum (int_of_float (float_of_int base *. factor)) in
  {
    titles = s default_sizes.titles 60;
    companies = s default_sizes.companies 40;
    persons = s default_sizes.persons 80;
    char_names = s default_sizes.char_names 50;
    keywords = s default_sizes.keywords 40;
    cast_info = s default_sizes.cast_info 200;
    movie_info = s default_sizes.movie_info 150;
    movie_companies = s default_sizes.movie_companies 100;
    movie_keyword = s default_sizes.movie_keyword 120;
    movie_link = s default_sizes.movie_link 30;
    aka_name = s default_sizes.aka_name 40;
    aka_title = s default_sizes.aka_title 20;
    complete_cast = s default_sizes.complete_cast 30;
    person_info = s default_sizes.person_info 60;
  }

let table_names =
  [
    "aka_name"; "aka_title"; "cast_info"; "char_name"; "comp_cast_type";
    "company_name"; "company_type"; "complete_cast"; "info_type"; "keyword";
    "kind_type"; "link_type"; "movie_companies"; "movie_info";
    "movie_info_idx"; "movie_keyword"; "movie_link"; "name"; "person_info";
    "role_type"; "title";
  ]

(* ------------------------------------------------------------------ *)
(* Column building helpers                                            *)

let int_col name values = Column.of_ints ~name values
let str_col name values = Column.of_strings ~name values

let id_col n = int_col "id" (Array.init n (fun i -> Some (i + 1)))

let all_null_str name n = str_col name (Array.make n None)

(* ------------------------------------------------------------------ *)
(* Tiny dimension tables                                              *)

let dimension_table ~name ~col values =
  let n = Array.length values in
  Table.create ~name ~pk:"id"
    [| id_col n; str_col col (Array.map (fun s -> Some s) values) |]

(* ------------------------------------------------------------------ *)
(* Generation proper                                                  *)

type movie_profile = {
  year : int option;
  kind : int; (* 0-based index into Vocab.kind_types *)
  primary_genre : int; (* index into Vocab.genres *)
  mutable has_us_company : bool;
  mutable rating : float option;
}

let phonetic prng =
  let letter = Char.chr (Char.code 'A' + Prng.int prng 26) in
  Printf.sprintf "%c%d" letter (Prng.int prng 600)

(* domlint: safe [R1] — constant vocabulary, never written *)
let month_names =
  [|
    "January"; "February"; "March"; "April"; "May"; "June"; "July"; "August";
    "September"; "October"; "November"; "December";
  |]

let generate ?(seed = 42) ?(scale = reference_scale) () =
  let sizes = sizes_of_scale scale in
  let root = Prng.create seed in
  let db = Storage.Database.create () in
  let add = Storage.Database.add_table db in

  (* --- dimension tables ------------------------------------------- *)
  add (dimension_table ~name:"kind_type" ~col:"kind" Vocab.kind_types);
  add (dimension_table ~name:"company_type" ~col:"kind" Vocab.company_types);
  add (dimension_table ~name:"role_type" ~col:"role" Vocab.role_types);
  add (dimension_table ~name:"link_type" ~col:"link" Vocab.link_types);
  add (dimension_table ~name:"comp_cast_type" ~col:"kind" Vocab.comp_cast_types);
  add (dimension_table ~name:"info_type" ~col:"info" Vocab.info_types);

  (* --- keyword ------------------------------------------------------ *)
  let kw_prng = Prng.split root in
  let n_kw = sizes.keywords in
  let n_special = Array.length Vocab.keywords_special in
  let keyword_strings =
    Array.init n_kw (fun i ->
        if i < n_special then Vocab.keywords_special.(i)
        else
          let stem = Prng.pick kw_prng Vocab.keyword_stems in
          let stem2 = Prng.pick kw_prng Vocab.keyword_stems in
          if Prng.bool kw_prng then Printf.sprintf "%s-%s" stem stem2
          else Printf.sprintf "%s-%s-%d" stem stem2 (Prng.int kw_prng 500))
  in
  add
    (Table.create ~name:"keyword" ~pk:"id"
       [|
         id_col n_kw;
         str_col "keyword" (Array.map (fun s -> Some s) keyword_strings);
         str_col "phonetic_code"
           (Array.init n_kw (fun _ ->
                if Prng.chance kw_prng 0.9 then Some (phonetic kw_prng) else None));
       |]);

  (* --- company_name ------------------------------------------------- *)
  let cn_prng = Prng.split root in
  let n_cn = sizes.companies in
  let majors = max 1 (n_cn / 10) in
  let code_zipf = Zipf.create ~n:(Array.length Vocab.country_codes) ~theta:1.1 in
  let company_country =
    Array.init n_cn (fun i ->
        let us_probability = if i < majors then 0.7 else 0.25 in
        if Prng.chance cn_prng us_probability then 0 (* "[us]" *)
        else 1 + Prng.int cn_prng (Array.length Vocab.country_codes - 1) |> fun j ->
          (* Skew the non-US tail towards the popular codes. *)
          if Prng.chance cn_prng 0.5 then
            max 1 (Zipf.sample code_zipf cn_prng)
          else j)
  in
  let company_names =
    Array.init n_cn (fun i ->
        let core = Prng.pick cn_prng Vocab.company_cores in
        let suffix = Prng.pick cn_prng Vocab.company_suffixes in
        if i < majors then Printf.sprintf "%s %s" core suffix
        else Printf.sprintf "%s %s %d" core suffix (Prng.int cn_prng 900))
  in
  add
    (Table.create ~name:"company_name" ~pk:"id"
       [|
         id_col n_cn;
         str_col "name" (Array.map (fun s -> Some s) company_names);
         str_col "country_code"
           (Array.init n_cn (fun i ->
                if Prng.chance cn_prng 0.04 then None
                else Some Vocab.country_codes.(company_country.(i))));
         int_col "imdb_id" (Array.make n_cn None);
         str_col "name_pcode_nf"
           (Array.init n_cn (fun _ -> Some (phonetic cn_prng)));
         str_col "name_pcode_sf"
           (Array.init n_cn (fun _ ->
                if Prng.chance cn_prng 0.8 then Some (phonetic cn_prng) else None));
         all_null_str "md5sum" n_cn;
       |]);

  (* --- name (persons) ----------------------------------------------- *)
  let nm_prng = Prng.split root in
  let n_nm = sizes.persons in
  (* gender.(p): 0 = male, 1 = female, 2 = NULL *)
  let person_gender =
    Array.init n_nm (fun _ ->
        let u = Prng.float nm_prng 1.0 in
        if u < 0.55 then 0 else if u < 0.93 then 1 else 2)
  in
  let person_name =
    Array.init n_nm (fun p ->
        let surname = Prng.pick nm_prng Vocab.surnames in
        let first =
          match person_gender.(p) with
          | 1 -> Prng.pick nm_prng Vocab.first_names_f
          | _ -> Prng.pick nm_prng Vocab.first_names_m
        in
        Printf.sprintf "%s, %s %d" surname first (Prng.int nm_prng 2000))
  in
  add
    (Table.create ~name:"name" ~pk:"id"
       [|
         id_col n_nm;
         str_col "name" (Array.map (fun s -> Some s) person_name);
         str_col "imdb_index"
           (Array.init n_nm (fun _ ->
                if Prng.chance nm_prng 0.03 then Some "I" else None));
         int_col "imdb_id" (Array.make n_nm None);
         str_col "gender"
           (Array.init n_nm (fun p ->
                match person_gender.(p) with
                | 0 -> Some "m"
                | 1 -> Some "f"
                | _ -> None));
         str_col "name_pcode_cf" (Array.init n_nm (fun _ -> Some (phonetic nm_prng)));
         str_col "name_pcode_nf"
           (Array.init n_nm (fun _ ->
                if Prng.chance nm_prng 0.85 then Some (phonetic nm_prng) else None));
         str_col "surname_pcode"
           (Array.init n_nm (fun _ ->
                if Prng.chance nm_prng 0.7 then Some (phonetic nm_prng) else None));
         all_null_str "md5sum" n_nm;
       |]);

  (* --- char_name ----------------------------------------------------- *)
  let chn_prng = Prng.split root in
  let n_chn = sizes.char_names in
  let special_chars =
    [| "Tony Stark"; "James Bond"; "Queen"; "Sherlock Holmes"; "Batman" |]
  in
  add
    (Table.create ~name:"char_name" ~pk:"id"
       [|
         id_col n_chn;
         str_col "name"
           (Array.init n_chn (fun i ->
                if i < Array.length special_chars then Some special_chars.(i)
                else
                  let first =
                    if Prng.bool chn_prng then Prng.pick chn_prng Vocab.first_names_m
                    else Prng.pick chn_prng Vocab.first_names_f
                  in
                  Some
                    (Printf.sprintf "%s %s" first (Prng.pick chn_prng Vocab.surnames))));
         str_col "imdb_index" (Array.make n_chn None);
         int_col "imdb_id" (Array.make n_chn None);
         str_col "name_pcode_nf" (Array.init n_chn (fun _ -> Some (phonetic chn_prng)));
         str_col "surname_pcode"
           (Array.init n_chn (fun _ ->
                if Prng.chance chn_prng 0.6 then Some (phonetic chn_prng) else None));
         all_null_str "md5sum" n_chn;
       |]);

  (* --- title --------------------------------------------------------- *)
  let t_prng = Prng.split root in
  let n_t = sizes.titles in
  let genre_zipf = Zipf.create ~n:(Array.length Vocab.genres) ~theta:0.7 in
  (* Kind assignment; remember tv-series rows so episodes can reference
     them. *)
  let series_rows = ref [] in
  let profiles =
    Array.init n_t (fun row ->
        let u = Prng.float t_prng 1.0 in
        let kind =
          if u < 0.60 then 0 (* movie *)
          else if u < 0.75 then 6 (* episode *)
          else if u < 0.83 then 1 (* tv series *)
          else if u < 0.89 then 2 (* tv movie *)
          else if u < 0.95 then 3 (* video movie *)
          else if u < 0.98 then 4 (* tv mini series *)
          else 5 (* video game *)
        in
        if kind = 1 then series_rows := row :: !series_rows;
        (* Popular rows (small index) skew recent: the age spread widens
           with the row index. *)
        let popularity = 1.0 -. (float_of_int row /. float_of_int n_t) in
        let spread = 25.0 +. ((1.0 -. popularity) *. 95.0) in
        let age = Prng.float t_prng 1.0 ** 1.5 *. spread in
        let year = 2013 - int_of_float age in
        let year = if Prng.chance t_prng 0.02 then None else Some (max 1880 year) in
        {
          year;
          kind;
          primary_genre = Zipf.sample genre_zipf t_prng;
          has_us_company = false;
          rating = None;
        })
  in
  let series = Array.of_list !series_rows in
  let title_year = Array.map (fun p -> p.year) profiles in
  let title_strings =
    Array.init n_t (fun row ->
        let p = profiles.(row) in
        let w1 = Prng.pick t_prng Vocab.title_words in
        let w2 = Prng.pick t_prng Vocab.title_words in
        let base =
          if Prng.chance t_prng 0.22 then Printf.sprintf "The %s %s" w1 w2
          else Printf.sprintf "%s of the %s" w1 w2
        in
        if p.kind = 6 then Printf.sprintf "%s (#%d.%d)" base (1 + Prng.int t_prng 12) (1 + Prng.int t_prng 24)
        else if Prng.chance t_prng 0.3 then Printf.sprintf "%s %d" base (Prng.int t_prng 2000)
        else base)
  in
  let episode_of =
    Array.init n_t (fun row ->
        if profiles.(row).kind = 6 && Array.length series > 0 then
          Some (Prng.pick t_prng series + 1)
        else None)
  in
  add
    (Table.create ~name:"title" ~pk:"id" ~fks:[ "kind_id" ]
       [|
         id_col n_t;
         str_col "title" (Array.map (fun s -> Some s) title_strings);
         str_col "imdb_index"
           (Array.init n_t (fun _ ->
                if Prng.chance t_prng 0.02 then Some "II" else None));
         int_col "kind_id" (Array.map (fun p -> Some (p.kind + 1)) profiles);
         int_col "production_year" title_year;
         int_col "imdb_id" (Array.make n_t None);
         str_col "phonetic_code" (Array.init n_t (fun _ -> Some (phonetic t_prng)));
         int_col "episode_of_id" episode_of;
         int_col "season_nr"
           (Array.init n_t (fun row ->
                if profiles.(row).kind = 6 then Some (1 + Prng.int t_prng 12) else None));
         int_col "episode_nr"
           (Array.init n_t (fun row ->
                if profiles.(row).kind = 6 then Some (1 + Prng.int t_prng 24) else None));
         str_col "series_years"
           (Array.init n_t (fun row ->
                if profiles.(row).kind = 1 then
                  let start = 1950 + Prng.int t_prng 60 in
                  Some (Printf.sprintf "%d-%d" start (start + Prng.int t_prng 12))
                else None));
         all_null_str "md5sum" n_t;
       |]);

  (* Popularity skew shared by every satellite table: this is the planted
     cross-table correlation. Movie row indexes are popularity ranks. *)
  let movie_zipf = Zipf.create ~n:n_t ~theta:0.6 in
  let person_zipf = Zipf.create ~n:n_nm ~theta:0.6 in
  let company_zipf = Zipf.create ~n:n_cn ~theta:0.8 in
  let keyword_zipf = Zipf.create ~n:n_kw ~theta:0.75 in

  (* --- movie_companies ---------------------------------------------- *)
  let mc_prng = Prng.split root in
  let n_mc = sizes.movie_companies in
  let mc_movie = Array.init n_mc (fun _ -> Zipf.sample movie_zipf mc_prng) in
  let mc_company =
    Array.init n_mc (fun i ->
        (* Popular movies attract the major companies. *)
        let movie = mc_movie.(i) in
        let popular = movie < n_t / 5 in
        if popular && Prng.chance mc_prng 0.3 then Prng.int mc_prng majors
        else Zipf.sample company_zipf mc_prng)
  in
  let mc_type =
    Array.init n_mc (fun _ ->
        let u = Prng.float mc_prng 1.0 in
        if u < 0.55 then 1 (* production companies *)
        else if u < 0.90 then 2 (* distributors *)
        else if u < 0.95 then 3
        else 4)
  in
  (* Record the join-crossing correlation input: movie has a US production
     company. *)
  Array.iteri
    (fun i movie ->
      if mc_type.(i) = 1 && company_country.(mc_company.(i)) = 0 then
        profiles.(movie).has_us_company <- true)
    mc_movie;
  let mc_note =
    Array.init n_mc (fun i ->
        if Prng.chance mc_prng 0.45 then None
        else
          let major = mc_company.(i) < majors in
          let pool = Vocab.mc_notes in
          let pick =
            if major && Prng.chance mc_prng 0.5 then pool.(0) (* (presents) *)
            else if Prng.chance mc_prng 0.25 then pool.(1) (* (co-production) *)
            else Prng.pick mc_prng pool
          in
          (* Some notes carry the year, enabling LIKE '%(199%' patterns. *)
          if Prng.chance mc_prng 0.2 then
            match profiles.(mc_movie.(i)).year with
            | Some y -> Some (Printf.sprintf "(%d) %s" y pick)
            | None -> Some pick
          else Some pick)
  in
  add
    (Table.create ~name:"movie_companies" ~pk:"id"
       ~fks:[ "movie_id"; "company_id"; "company_type_id" ]
       [|
         id_col n_mc;
         int_col "movie_id" (Array.map (fun m -> Some (m + 1)) mc_movie);
         int_col "company_id" (Array.map (fun c -> Some (c + 1)) mc_company);
         int_col "company_type_id" (Array.map (fun x -> Some x) mc_type);
         str_col "note" mc_note;
       |]);

  (* --- movie_info ----------------------------------------------------- *)
  let mi_prng = Prng.split root in
  let n_mi = sizes.movie_info in
  let it_id = Vocab.info_type_id in
  let mi_movie = Array.init n_mi (fun _ -> Zipf.sample movie_zipf mi_prng) in
  let mi_type = Array.make n_mi 0 in
  let mi_info = Array.make n_mi None in
  for i = 0 to n_mi - 1 do
    let movie = mi_movie.(i) in
    let p = profiles.(movie) in
    let u = Prng.float mi_prng 1.0 in
    if u < 0.25 then begin
      mi_type.(i) <- it_id "genres";
      let genre =
        if Prng.chance mi_prng 0.6 then Vocab.genres.(p.primary_genre)
        else Prng.pick mi_prng Vocab.genres
      in
      mi_info.(i) <- Some genre
    end
    else if u < 0.40 then begin
      mi_type.(i) <- it_id "countries";
      (* Join-crossing correlation: movies of US production companies are
         overwhelmingly tagged "USA". *)
      let usa_probability = if p.has_us_company then 0.8 else 0.15 in
      let country =
        if Prng.chance mi_prng usa_probability then "USA"
        else Vocab.countries.(1 + Prng.int mi_prng (Array.length Vocab.countries - 1))
      in
      mi_info.(i) <- Some country
    end
    else if u < 0.52 then begin
      mi_type.(i) <- it_id "languages";
      let english_probability = if p.has_us_company then 0.85 else 0.3 in
      let language =
        if Prng.chance mi_prng english_probability then "English"
        else Vocab.languages.(1 + Prng.int mi_prng (Array.length Vocab.languages - 1))
      in
      mi_info.(i) <- Some language
    end
    else if u < 0.70 then begin
      mi_type.(i) <- it_id "release dates";
      let country =
        if p.has_us_company && Prng.chance mi_prng 0.7 then "USA"
        else Prng.pick mi_prng Vocab.countries
      in
      let year = match p.year with Some y -> y | None -> 1990 in
      mi_info.(i) <-
        Some
          (Printf.sprintf "%s:%d %s %d" country
             (1 + Prng.int mi_prng 28)
             (Prng.pick mi_prng month_names)
             (min 2013 (year + Prng.int mi_prng 2)))
    end
    else if u < 0.78 then begin
      mi_type.(i) <- it_id "runtimes";
      mi_info.(i) <- Some (string_of_int (60 + Prng.int mi_prng 120))
    end
    else if u < 0.84 then begin
      mi_type.(i) <- it_id "color info";
      mi_info.(i) <-
        Some (if Prng.chance mi_prng 0.85 then "Color" else "Black and White")
    end
    else if u < 0.91 then begin
      mi_type.(i) <- it_id "plot";
      mi_info.(i) <-
        Some
          (Printf.sprintf "A story about %s and %s."
             (Prng.pick mi_prng Vocab.keyword_stems)
             (Prng.pick mi_prng Vocab.keyword_stems))
    end
    else if u < 0.96 then begin
      mi_type.(i) <- it_id "certificates";
      mi_info.(i) <-
        Some
          (Printf.sprintf "%s:%s"
             (Prng.pick mi_prng [| "USA"; "UK"; "Germany"; "France" |])
             (Prng.pick mi_prng [| "PG"; "PG-13"; "R"; "G"; "12"; "16" |]))
    end
    else begin
      mi_type.(i) <- it_id "locations";
      mi_info.(i) <-
        Some
          (Printf.sprintf "%s" (Prng.pick mi_prng Vocab.countries))
    end
  done;
  add
    (Table.create ~name:"movie_info" ~pk:"id" ~fks:[ "movie_id"; "info_type_id" ]
       [|
         id_col n_mi;
         int_col "movie_id" (Array.map (fun m -> Some (m + 1)) mi_movie);
         int_col "info_type_id" (Array.map (fun x -> Some x) mi_type);
         str_col "info" mi_info;
         str_col "note"
           (Array.init n_mi (fun _ ->
                if Prng.chance mi_prng 0.12 then Some "(estimated)" else None));
       |]);

  (* --- movie_info_idx -------------------------------------------------- *)
  (* Per-movie coverage: popular movies almost always carry rating and
     votes rows; ratings themselves correlate with popularity (the second
     join-crossing correlation: big casts <-> high ratings). *)
  let mx_prng = Prng.split root in
  let mx_movie = ref [] and mx_type = ref [] and mx_info = ref [] in
  let emit movie type_id info =
    mx_movie := movie :: !mx_movie;
    mx_type := type_id :: !mx_type;
    mx_info := Some info :: !mx_info
  in
  for movie = 0 to n_t - 1 do
    let popularity = 1.0 -. (float_of_int movie /. float_of_int n_t) in
    if Prng.chance mx_prng (0.25 +. (0.65 *. popularity)) then begin
      let noise = Prng.float mx_prng 2.4 -. 1.2 in
      let rating =
        Float.min 9.9 (Float.max 1.0 (4.8 +. (3.4 *. popularity) +. noise))
      in
      profiles.(movie).rating <- Some rating;
      emit movie (it_id "rating") (Printf.sprintf "%.1f" rating);
      let votes =
        5 + int_of_float (popularity ** 3.0 *. 80_000.0) + Prng.int mx_prng 200
      in
      emit movie (it_id "votes") (string_of_int votes)
    end;
    if movie < 250 && Prng.chance mx_prng 0.6 then
      emit movie (it_id "top 250 rank") (string_of_int (movie + 1))
  done;
  let mx_movie = Array.of_list (List.rev !mx_movie) in
  let mx_type = Array.of_list (List.rev !mx_type) in
  let mx_info = Array.of_list (List.rev !mx_info) in
  let n_mx = Array.length mx_movie in
  add
    (Table.create ~name:"movie_info_idx" ~pk:"id"
       ~fks:[ "movie_id"; "info_type_id" ]
       [|
         id_col n_mx;
         int_col "movie_id" (Array.map (fun m -> Some (m + 1)) mx_movie);
         int_col "info_type_id" (Array.map (fun x -> Some x) mx_type);
         str_col "info" mx_info;
         all_null_str "note" n_mx;
       |]);

  (* --- cast_info ------------------------------------------------------- *)
  let ci_prng = Prng.split root in
  let n_ci = sizes.cast_info in
  let ci_movie = Array.init n_ci (fun _ -> Zipf.sample movie_zipf ci_prng) in
  let ci_person =
    Array.init n_ci (fun i ->
        (* Popular movies employ popular people. *)
        let movie = ci_movie.(i) in
        if movie < n_t / 5 && Prng.chance ci_prng 0.3 then
          Zipf.sample person_zipf ci_prng
        else Prng.int ci_prng n_nm)
  in
  let ci_role =
    Array.init n_ci (fun i ->
        let gender = person_gender.(ci_person.(i)) in
        let u = Prng.float ci_prng 1.0 in
        (* role ids are 1-based: actor=1, actress=2, producer=3, writer=4,
           director=5, ... *)
        match gender with
        | 1 ->
            if u < 0.52 then 2
            else if u < 0.60 then 3
            else if u < 0.68 then 4
            else if u < 0.73 then 5
            else 6 + Prng.int ci_prng 6
        | _ ->
            if u < 0.48 then 1
            else if u < 0.60 then 3
            else if u < 0.70 then 4
            else if u < 0.78 then 5
            else 6 + Prng.int ci_prng 6)
  in
  let ci_note =
    Array.init n_ci (fun i ->
        let role = ci_role.(i) in
        if role = 3 && Prng.chance ci_prng 0.55 then
          Some
            (if Prng.chance ci_prng 0.6 then "(producer)"
             else if Prng.chance ci_prng 0.5 then "(executive producer)"
             else "(co-producer)")
        else if Prng.chance ci_prng 0.18 then
          (* Voice notes concentrate on Animation titles. *)
          let p = profiles.(ci_movie.(i)) in
          if Vocab.genres.(p.primary_genre) = "Animation" then
            Some (if Prng.chance ci_prng 0.5 then "(voice)" else "(voice: English version)")
          else Some (Prng.pick ci_prng Vocab.ci_notes)
        else None)
  in
  add
    (Table.create ~name:"cast_info" ~pk:"id"
       ~fks:[ "person_id"; "movie_id"; "person_role_id"; "role_id" ]
       [|
         id_col n_ci;
         int_col "person_id" (Array.map (fun p -> Some (p + 1)) ci_person);
         int_col "movie_id" (Array.map (fun m -> Some (m + 1)) ci_movie);
         int_col "person_role_id"
           (Array.init n_ci (fun i ->
                let role = ci_role.(i) in
                if (role = 1 || role = 2) && Prng.chance ci_prng 0.6 then
                  Some (1 + Prng.int ci_prng n_chn)
                else None));
         str_col "note" ci_note;
         int_col "nr_order"
           (Array.init n_ci (fun _ ->
                if Prng.chance ci_prng 0.5 then Some (1 + Prng.int ci_prng 60)
                else None));
         int_col "role_id" (Array.map (fun r -> Some r) ci_role);
       |]);

  (* --- movie_keyword ---------------------------------------------------- *)
  let mk_prng = Prng.split root in
  let n_mk = sizes.movie_keyword in
  (* Genre-linked keyword pools (indexes into the keyword table). *)
  let pool_of_genre genre =
    match Vocab.genres.(genre) with
    | "Horror" | "Thriller" | "Crime" -> [| 6; 7; 8; 9; 10 |] (* murder..revenge *)
    | "Action" | "Adventure" -> [| 1; 3; 4; 5 |] (* marvel, comic, sequel, superhero *)
    | "Romance" | "Drama" -> [| 13; 14; 15 |] (* love, friendship, death *)
    | _ -> [| 0; 12; 16; 17 |]
  in
  let mk_movie = Array.init n_mk (fun _ -> Zipf.sample movie_zipf mk_prng) in
  let mk_keyword =
    Array.init n_mk (fun i ->
        let movie = mk_movie.(i) in
        let p = profiles.(movie) in
        if Prng.chance mk_prng 0.45 then
          let pool = pool_of_genre p.primary_genre in
          Prng.pick mk_prng pool
        else Zipf.sample keyword_zipf mk_prng)
  in
  add
    (Table.create ~name:"movie_keyword" ~pk:"id" ~fks:[ "movie_id"; "keyword_id" ]
       [|
         id_col n_mk;
         int_col "movie_id" (Array.map (fun m -> Some (m + 1)) mk_movie);
         int_col "keyword_id" (Array.map (fun k -> Some (k + 1)) mk_keyword);
       |]);

  (* --- movie_link -------------------------------------------------------- *)
  let ml_prng = Prng.split root in
  let n_ml = sizes.movie_link in
  let popular_pool = max 2 (n_t / 4) in
  add
    (Table.create ~name:"movie_link" ~pk:"id"
       ~fks:[ "movie_id"; "linked_movie_id"; "link_type_id" ]
       [|
         id_col n_ml;
         int_col "movie_id"
           (Array.init n_ml (fun _ -> Some (1 + Prng.int ml_prng popular_pool)));
         int_col "linked_movie_id"
           (Array.init n_ml (fun _ -> Some (1 + Prng.int ml_prng popular_pool)));
         int_col "link_type_id"
           (Array.init n_ml (fun _ ->
                if Prng.chance ml_prng 0.5 then Some (1 + Prng.int ml_prng 2)
                else Some (1 + Prng.int ml_prng (Array.length Vocab.link_types))));
       |]);

  (* --- aka_name ----------------------------------------------------------- *)
  let an_prng = Prng.split root in
  let n_an = sizes.aka_name in
  add
    (Table.create ~name:"aka_name" ~pk:"id" ~fks:[ "person_id" ]
       [|
         id_col n_an;
         int_col "person_id"
           (Array.init n_an (fun _ -> Some (1 + Zipf.sample person_zipf an_prng)));
         str_col "name"
           (Array.init n_an (fun _ ->
                Some
                  (Printf.sprintf "%s %s"
                     (Prng.pick an_prng Vocab.first_names_m)
                     (Prng.pick an_prng Vocab.surnames))));
         str_col "imdb_index" (Array.make n_an None);
         str_col "name_pcode_cf" (Array.init n_an (fun _ -> Some (phonetic an_prng)));
         str_col "name_pcode_nf" (Array.init n_an (fun _ -> Some (phonetic an_prng)));
         str_col "surname_pcode"
           (Array.init n_an (fun _ ->
                if Prng.chance an_prng 0.6 then Some (phonetic an_prng) else None));
         all_null_str "md5sum" n_an;
       |]);

  (* --- aka_title ------------------------------------------------------------ *)
  let at_prng = Prng.split root in
  let n_at = sizes.aka_title in
  let at_movie = Array.init n_at (fun _ -> Zipf.sample movie_zipf at_prng) in
  add
    (Table.create ~name:"aka_title" ~pk:"id" ~fks:[ "movie_id"; "kind_id" ]
       [|
         id_col n_at;
         int_col "movie_id" (Array.map (fun m -> Some (m + 1)) at_movie);
         str_col "title"
           (Array.init n_at (fun i ->
                Some (Printf.sprintf "%s (aka %d)" title_strings.(at_movie.(i)) i)));
         str_col "imdb_index" (Array.make n_at None);
         int_col "kind_id"
           (Array.map (fun m -> Some (profiles.(m).kind + 1)) at_movie);
         int_col "production_year" (Array.map (fun m -> profiles.(m).year) at_movie);
         str_col "phonetic_code" (Array.init n_at (fun _ -> Some (phonetic at_prng)));
         int_col "episode_of_id" (Array.make n_at None);
         int_col "season_nr" (Array.make n_at None);
         int_col "episode_nr" (Array.make n_at None);
         str_col "note"
           (Array.init n_at (fun _ ->
                if Prng.chance at_prng 0.3 then Some "(worldwide, English title)"
                else None));
         all_null_str "md5sum" n_at;
       |]);

  (* --- complete_cast ----------------------------------------------------------- *)
  let cc_prng = Prng.split root in
  let n_cc = sizes.complete_cast in
  add
    (Table.create ~name:"complete_cast" ~pk:"id"
       ~fks:[ "movie_id"; "subject_id"; "status_id" ]
       [|
         id_col n_cc;
         int_col "movie_id"
           (Array.init n_cc (fun _ -> Some (1 + Zipf.sample movie_zipf cc_prng)));
         int_col "subject_id"
           (Array.init n_cc (fun _ -> Some (1 + Prng.int cc_prng 2)));
         int_col "status_id"
           (Array.init n_cc (fun _ -> Some (3 + Prng.int cc_prng 2)));
       |]);

  (* --- person_info ---------------------------------------------------------------- *)
  let pi_prng = Prng.split root in
  let n_pi = sizes.person_info in
  let pi_person = Array.init n_pi (fun _ -> Zipf.sample person_zipf pi_prng) in
  let pi_types =
    [| it_id "birth date"; it_id "birth name"; it_id "height"; it_id "biography";
       it_id "death date"; it_id "spouse" |]
  in
  add
    (Table.create ~name:"person_info" ~pk:"id" ~fks:[ "person_id"; "info_type_id" ]
       [|
         id_col n_pi;
         int_col "person_id" (Array.map (fun p -> Some (p + 1)) pi_person);
         int_col "info_type_id"
           (Array.init n_pi (fun _ -> Some (Prng.pick pi_prng pi_types)));
         str_col "info"
           (Array.init n_pi (fun _ ->
                Some
                  (Printf.sprintf "%d %s %d"
                     (1 + Prng.int pi_prng 28)
                     (Prng.pick pi_prng month_names)
                     (1900 + Prng.int pi_prng 95))));
         str_col "note"
           (Array.init n_pi (fun _ ->
                if Prng.chance pi_prng 0.08 then Some "Volker Boehm" else None));
       |]);

  db
