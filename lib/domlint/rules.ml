(* The per-file domain-safety rules, each a syntactic pass over the
   Parsetree. Everything reports through {!Verify.Violation} so source
   findings share the severity/reporting format of the plan sanitizers.

   R1  module-toplevel mutable state ([ref], [Hashtbl.create], array
       literals/constructors, records with mutable fields) must be
       wrapped in a recognized domain-safe container ([Atomic], [Mutex],
       [Condition], [Util.Once], [Util.Shard_map], [Util.Domain_pool])
       or carry a suppression. Function bindings are exempt — state
       created inside a function body is per-call. [let () = ...] and
       [let _ = ...] initializers are exempt: nothing they create can be
       named from outside.
   R2  no [lazy] / [Lazy.*] outside lib/util/once.ml (Lazy is
       domain-unsafe under OCaml 5: concurrent forcing raises
       [Undefined]).
   R3  no global [Random.*] outside lib/util/prng.ml (shared global
       state breaks deterministic -j N replay).
   R5  no [Domain.spawn] outside lib/util/domain_pool.ml (domains are a
       bounded resource owned by the pool).
   R6  no [Atomic.fetch_and_add] — the work-distribution primitive —
       outside lib/util/domain_pool.ml and lib/exec/morsel.ml: shared
       mutable scheduler state belongs to the pool and the morsel
       scheduler. Monotone telemetry counters elsewhere must carry an
       explicit allowlist entry stating why they are not work
       distribution.
   R7  serving-session bookkeeping (toplevel bindings or mutable record
       fields whose names speak the serving vocabulary — session, conn,
       admission, inflight, lru) is confined to lib/serve/ and the
       join-build recycling cache in lib/exec/join_cache.ml. Even
       individually synchronized state counts: the point is confinement
       — one layer owns admission and eviction, so its invariants can
       be audited in one place.
   R8  observability state (toplevel bindings or mutable record fields
       whose names speak the telemetry vocabulary — metric, span,
       trace, telemetry) is confined to lib/obs/. Bindings that
       register cells through the Obs API are sanctioned: the state
       they name already lives in the obs registry. Same rationale as
       R7 — one layer owns buffers and cells, so the flush/reset
       discipline can be audited in one place. *)

module Violation = Verify.Violation

type finding = {
  line : int;  (** the offending construct *)
  bind_line : int;  (** the enclosing toplevel binding ([line] if none) *)
  symbol : string;  (** enclosing binding name, or "" *)
  msg : string;
}

type rule_result = {
  checks : int;
  kept : Violation.t list;
  suppressed : int;
}

(* Filter findings through inline annotations and the allowlist, then
   render the survivors as violations. *)
let resolve ~allow ~(file : Source.t) ~rule ~pass ~checks findings =
  let suppressed = ref 0 in
  let kept =
    List.filter_map
      (fun f ->
        let covered =
          List.exists
            (fun ann ->
              Suppress.annotation_covers ann ~rule ~line:f.line
                ~bind_line:f.bind_line)
            file.Source.annotations
          || Suppress.allow_matches allow ~rule ~path:file.Source.rel
               ~symbol:f.symbol
        in
        if covered then begin
          incr suppressed;
          None
        end
        else
          Some
            {
              Violation.pass;
              subject = Printf.sprintf "%s:%d" file.Source.rel f.line;
              message = f.msg;
            })
      findings
  in
  { checks; kept; suppressed = !suppressed }

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)

let flatten lid = Longident.flatten lid

(* "Util.Shard_map.find_or_add" -> module "Shard_map", value
   "find_or_add". Library wrapping means the same function is reachable
   under several prefixes; the last module component is the stable
   part. *)
let split_qualified lid =
  match List.rev (flatten lid) with
  | value :: md :: _ -> Some (md, value)
  | _ -> None

let mentions_module lid name =
  match List.rev (flatten lid) with
  | _value :: mods -> List.mem name mods
  | [] -> false

(* ------------------------------------------------------------------ *)
(* Structure traversal shared by the rules and the lock-graph pass      *)

(* Toplevel value bindings, recursing into [module M = struct ... end]
   (their items are just as much module state). *)
let rec toplevel_bindings (items : Parsetree.structure) =
  List.concat_map
    (fun (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) -> vbs
      | Pstr_module { pmb_expr; _ } -> module_bindings pmb_expr
      | Pstr_recmodule mbs ->
          List.concat_map (fun (mb : Parsetree.module_binding) ->
              module_bindings mb.pmb_expr) mbs
      | _ -> [])
    items

and module_bindings (me : Parsetree.module_expr) =
  match me.pmod_desc with
  | Pmod_structure items -> toplevel_bindings items
  | Pmod_constraint (me, _) | Pmod_functor (_, me) -> module_bindings me
  | _ -> []

let binding_name (vb : Parsetree.value_binding) =
  let rec of_pat (p : Parsetree.pattern) =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> of_pat p
    | _ -> None
  in
  of_pat vb.pvb_pat

(* Global pass: every mutable record-field name declared anywhere in the
   scanned tree. A toplevel record literal touching one of these is
   shared mutable state no matter which module declared the type. *)
let collect_mutable_fields files =
  let fields = Hashtbl.create 64 in
  let rec scan_items items =
    List.iter
      (fun (item : Parsetree.structure_item) ->
        match item.pstr_desc with
        | Pstr_type (_, decls) ->
            List.iter
              (fun (d : Parsetree.type_declaration) ->
                match d.ptype_kind with
                | Ptype_record labels ->
                    List.iter
                      (fun (l : Parsetree.label_declaration) ->
                        if l.pld_mutable = Mutable then
                          Hashtbl.replace fields l.pld_name.txt ())
                      labels
                | _ -> ())
              decls
        | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
            scan_items s
        | _ -> ())
      items
  in
  List.iter (fun (f : Source.t) -> scan_items f.Source.ast) files;
  fields

(* ------------------------------------------------------------------ *)
(* R1: toplevel mutable state                                          *)

let r1_pass = "domlint/R1-toplevel-mutable-state"

(* Wrappers that make shared state domain-safe by construction; their
   subtrees are not scanned further. *)
let safe_wrapper_modules =
  [ "Atomic"; "Mutex"; "Condition"; "Semaphore"; "Once"; "Shard_map";
    "Domain_pool"; "DLS" ]

(* Constructors of bare mutable containers. *)
let mutable_constructors =
  [
    ("Hashtbl", [ "create"; "of_seq"; "copy" ]);
    ("Buffer", [ "create" ]);
    ("Queue", [ "create"; "of_seq"; "copy" ]);
    ("Stack", [ "create"; "of_seq"; "copy" ]);
    ("Bytes", [ "create"; "make"; "init"; "of_string"; "copy"; "sub" ]);
    ( "Array",
      [
        "make"; "create_float"; "init"; "make_matrix"; "of_list"; "of_seq";
        "copy"; "append"; "concat"; "sub"; "map"; "mapi";
      ] );
    ("Weak", [ "create" ]);
  ]

let is_function_body (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let check_r1 ~allow ~mutable_fields (file : Source.t) =
  let checks = ref 0 in
  let findings = ref [] in
  let add ~line ~bind_line ~symbol msg =
    findings := { line; bind_line; symbol; msg } :: !findings
  in
  let scan_binding ~bind_line ~symbol (rhs : Parsetree.expression) =
    (* Walk the initializer, but not into function bodies: state created
       per call is local. Everything found here is evaluated once at
       module initialization and shared by every domain. *)
    let rec walk (e : Parsetree.expression) =
      let line = Source.line_of e.pexp_loc in
      match e.pexp_desc with
      | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> ()
      | Pexp_array _ ->
          add ~line ~bind_line ~symbol
            (Printf.sprintf
               "toplevel binding '%s' holds a bare array: wrap it in Atomic \
                or a guarded container, or suppress with a domlint annotation"
               symbol)
      | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) -> (
          match split_qualified txt with
          | Some (md, _) when List.mem md safe_wrapper_modules ->
              () (* wrapped: presumed intentional and guarded *)
          | Some (md, fn)
            when List.exists
                   (fun (m, fns) -> String.equal m md && List.mem fn fns)
                   mutable_constructors ->
              add ~line ~bind_line ~symbol
                (Printf.sprintf
                   "toplevel binding '%s' creates a bare %s.%s: wrap it in \
                    Atomic/Mutex/Util.Shard_map/Util.Once or suppress with a \
                    domlint annotation"
                   symbol md fn)
          | _ -> (
              match flatten txt with
              | [ "ref" ] ->
                  add ~line ~bind_line ~symbol
                    (Printf.sprintf
                       "toplevel binding '%s' is a bare ref: use Atomic.make \
                        (or guard it and annotate why it is safe)"
                       symbol)
              | _ -> List.iter (fun (_, a) -> walk a) args))
      | Pexp_record (fields, base) ->
          List.iter
            (fun (({ txt; _ } : Longident.t Location.loc), value) ->
              (match List.rev (flatten txt) with
              | fname :: _ when Hashtbl.mem mutable_fields fname ->
                  add ~line ~bind_line ~symbol
                    (Printf.sprintf
                       "toplevel binding '%s' builds a record with mutable \
                        field '%s': shared unsynchronized state"
                       symbol fname)
              | _ -> ());
              walk value)
            fields;
          Option.iter walk base
      | _ -> default e
    and default e =
      (* Generic descent into immediate children, reusing the iterator's
         knowledge of the grammar so new syntax can't be skipped. *)
      let it =
        {
          Ast_iterator.default_iterator with
          expr = (fun _ child -> walk child);
        }
      in
      Ast_iterator.default_iterator.expr it e
    in
    walk rhs
  in
  List.iter
    (fun (vb : Parsetree.value_binding) ->
      match binding_name vb with
      | None -> () (* let () / let _: results cannot escape by name *)
      | Some symbol ->
          if not (is_function_body vb.pvb_expr) then begin
            incr checks;
            scan_binding ~bind_line:(Source.line_of vb.pvb_loc) ~symbol
              vb.pvb_expr
          end)
    (toplevel_bindings file.Source.ast);
  resolve ~allow ~file ~rule:"R1" ~pass:r1_pass ~checks:(max 1 !checks)
    (List.rev !findings)

(* ------------------------------------------------------------------ *)
(* R2/R3/R5: forbidden constructs outside their owner module            *)

let r2_pass = "domlint/R2-lazy"
let r3_pass = "domlint/R3-global-random"
let r5_pass = "domlint/R5-domain-spawn"
let r6_pass = "domlint/R6-scheduler-state"

let exempt file suffixes =
  List.exists
    (fun s -> Suppress.path_matches ~pattern:s file.Source.rel)
    suffixes

(* Walk every expression (and module expression) in the file. *)
let iter_idents (file : Source.t) ~on_expr ~on_lid =
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it (e : Parsetree.expression) ->
          on_expr e;
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> on_lid e.pexp_loc txt
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
      module_expr =
        (fun it (me : Parsetree.module_expr) ->
          (match me.pmod_desc with
          | Pmod_ident { txt; _ } -> on_lid me.pmod_loc txt
          | _ -> ());
          Ast_iterator.default_iterator.module_expr it me);
    }
  in
  it.structure it file.Source.ast

let check_r2 ~allow (file : Source.t) =
  if exempt file [ "lib/util/once.ml" ] then
    { checks = 1; kept = []; suppressed = 0 }
  else begin
    let findings = ref [] in
    let add line msg = findings := { line; bind_line = line; symbol = ""; msg } :: !findings in
    iter_idents file
      ~on_expr:(fun e ->
        match e.pexp_desc with
        | Pexp_lazy _ ->
            add (Source.line_of e.pexp_loc)
              "lazy expression: Lazy is domain-unsafe under OCaml 5 \
               (concurrent forcing raises Undefined); use Util.Once"
        | _ -> ())
      ~on_lid:(fun loc lid ->
        if mentions_module lid "Lazy" then
          add (Source.line_of loc)
            "Lazy.* use outside lib/util/once.ml: use Util.Once instead");
    resolve ~allow ~file ~rule:"R2" ~pass:r2_pass
      ~checks:(1 + List.length !findings)
      (List.rev !findings)
  end

let check_r3 ~allow (file : Source.t) =
  if exempt file [ "lib/util/prng.ml" ] then
    { checks = 1; kept = []; suppressed = 0 }
  else begin
    let findings = ref [] in
    iter_idents file
      ~on_expr:(fun _ -> ())
      ~on_lid:(fun loc lid ->
        if mentions_module lid "Random" || flatten lid = [ "Random" ] then
          findings :=
            {
              line = Source.line_of loc;
              bind_line = Source.line_of loc;
              symbol = "";
              msg =
                "global Random.* outside lib/util/prng.ml: shared PRNG state \
                 breaks deterministic -j N replay; thread a Util.Prng.t";
            }
            :: !findings);
    resolve ~allow ~file ~rule:"R3" ~pass:r3_pass
      ~checks:(1 + List.length !findings)
      (List.rev !findings)
  end

let check_r5 ~allow (file : Source.t) =
  if exempt file [ "lib/util/domain_pool.ml" ] then
    { checks = 1; kept = []; suppressed = 0 }
  else begin
    let findings = ref [] in
    iter_idents file
      ~on_expr:(fun _ -> ())
      ~on_lid:(fun loc lid ->
        match List.rev (flatten lid) with
        | "spawn" :: "Domain" :: _ ->
            findings :=
              {
                line = Source.line_of loc;
                bind_line = Source.line_of loc;
                symbol = "";
                msg =
                  "Domain.spawn outside lib/util/domain_pool.ml: domains are \
                   a bounded resource; go through Util.Domain_pool";
              }
              :: !findings
        | _ -> ());
    resolve ~allow ~file ~rule:"R5" ~pass:r5_pass
      ~checks:(1 + List.length !findings)
      (List.rev !findings)
  end

let check_r6 ~allow (file : Source.t) =
  if exempt file [ "lib/util/domain_pool.ml"; "lib/exec/morsel.ml" ] then
    { checks = 1; kept = []; suppressed = 0 }
  else begin
    let findings = ref [] in
    iter_idents file
      ~on_expr:(fun _ -> ())
      ~on_lid:(fun loc lid ->
        match List.rev (flatten lid) with
        | "fetch_and_add" :: "Atomic" :: _ ->
            findings :=
              {
                line = Source.line_of loc;
                bind_line = Source.line_of loc;
                symbol = "";
                msg =
                  "Atomic.fetch_and_add outside lib/util/domain_pool.ml and \
                   lib/exec/morsel.ml: shared scheduler state belongs to the \
                   pool or the morsel scheduler; a telemetry counter needs an \
                   allowlist entry saying why it is not work distribution";
              }
              :: !findings
        | _ -> ());
    resolve ~allow ~file ~rule:"R6" ~pass:r6_pass
      ~checks:(1 + List.length !findings)
      (List.rev !findings)
  end

(* ------------------------------------------------------------------ *)
(* R7: serving-state confinement                                       *)

let r7_pass = "domlint/R7-serving-state"

(* Session/connection bookkeeping vocabulary. A toplevel binding with
   one of these in its name that creates state — even individually
   synchronized state like an [Atomic] — is serving infrastructure
   leaking out of the serving layer, where it would dodge the admission
   and eviction discipline lib/serve maintains. *)
let r7_vocab =
  [ "session"; "conn"; "admission"; "inflight"; "in_flight"; "lru" ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec at i =
    i + m <= n && (String.equal (String.sub s i m) sub || at (i + 1))
  in
  m > 0 && at 0

let r7_serving_name s =
  let s = String.lowercase_ascii s in
  List.exists (contains_sub s) r7_vocab

(* The owning layer. [Suppress.path_matches] is suffix-only, so the
   lib/serve/ directory needs a substring containment check. *)
let r7_confined (file : Source.t) =
  contains_sub file.Source.rel "lib/serve/"
  || Suppress.path_matches ~pattern:"lib/exec/join_cache.ml" file.Source.rel

let check_r7 ~allow ~mutable_fields (file : Source.t) =
  if r7_confined file then { checks = 1; kept = []; suppressed = 0 }
  else begin
    let checks = ref 0 in
    let findings = ref [] in
    let add ~line ~bind_line ~symbol msg =
      findings := { line; bind_line; symbol; msg } :: !findings
    in
    let hint =
      "serving-session bookkeeping is confined to lib/serve/ (and the \
       join-build recycling cache in lib/exec/join_cache.ml)"
    in
    let scan_binding ~bind_line ~symbol (rhs : Parsetree.expression) =
      let named = r7_serving_name symbol in
      (* Same traversal discipline as R1: skip function bodies (per-call
         state is local), flag state created once at module init. *)
      let rec walk (e : Parsetree.expression) =
        let line = Source.line_of e.pexp_loc in
        match e.pexp_desc with
        | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> ()
        | Pexp_array _ when named ->
            add ~line ~bind_line ~symbol
              (Printf.sprintf
                 "toplevel binding '%s' holds serving state (bare array): %s"
                 symbol hint)
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
            let stateful =
              match split_qualified txt with
              | Some (md, fn) ->
                  List.mem md safe_wrapper_modules
                  || List.exists
                       (fun (m, fns) -> String.equal m md && List.mem fn fns)
                       mutable_constructors
              | None -> flatten txt = [ "ref" ]
            in
            if named && stateful then
              add ~line ~bind_line ~symbol
                (Printf.sprintf
                   "toplevel binding '%s' holds serving state (%s): %s" symbol
                   (String.concat "." (flatten txt))
                   hint)
            else List.iter (fun (_, a) -> walk a) args
        | Pexp_record (fields, base) ->
            List.iter
              (fun (({ txt; _ } : Longident.t Location.loc), value) ->
                (match List.rev (flatten txt) with
                | fname :: _
                  when Hashtbl.mem mutable_fields fname
                       && (named || r7_serving_name fname) ->
                    add ~line ~bind_line ~symbol
                      (Printf.sprintf
                         "toplevel binding '%s' builds serving state (mutable \
                          field '%s'): %s"
                         symbol fname hint)
                | _ -> ());
                walk value)
              fields;
            Option.iter walk base
        | _ ->
            let it =
              {
                Ast_iterator.default_iterator with
                expr = (fun _ child -> walk child);
              }
            in
            Ast_iterator.default_iterator.expr it e
      in
      walk rhs
    in
    List.iter
      (fun (vb : Parsetree.value_binding) ->
        match binding_name vb with
        | None -> ()
        | Some symbol ->
            if not (is_function_body vb.pvb_expr) then begin
              incr checks;
              scan_binding ~bind_line:(Source.line_of vb.pvb_loc) ~symbol
                vb.pvb_expr
            end)
      (toplevel_bindings file.Source.ast);
    resolve ~allow ~file ~rule:"R7" ~pass:r7_pass ~checks:(max 1 !checks)
      (List.rev !findings)
  end

(* ------------------------------------------------------------------ *)
(* R8: observability-state confinement                                 *)

let r8_pass = "domlint/R8-observability-state"

(* Telemetry vocabulary. "histogram" is deliberately absent — it names
   a statistics-domain concept (lib/dbstats/histogram.ml), not just
   telemetry plumbing. *)
let r8_vocab = [ "metric"; "span"; "trace"; "telemetry" ]

let r8_obs_name s =
  let s = String.lowercase_ascii s in
  List.exists (contains_sub s) r8_vocab

(* The owning layer: span buffers and metric cells live in lib/obs/. *)
let r8_confined (file : Source.t) = contains_sub file.Source.rel "lib/obs/"

(* A right-hand side that goes through the obs API
   ([Obs.Metrics.counter], [Obs.Trace.intern], ...) is sanctioned: the
   state such a binding names lives inside lib/obs's registry, which
   is exactly the confinement the rule enforces. *)
let r8_sanctioned txt =
  List.exists (mentions_module txt) [ "Obs"; "Metrics"; "Trace" ]

let check_r8 ~allow ~mutable_fields (file : Source.t) =
  if r8_confined file then { checks = 1; kept = []; suppressed = 0 }
  else begin
    let checks = ref 0 in
    let findings = ref [] in
    let add ~line ~bind_line ~symbol msg =
      findings := { line; bind_line; symbol; msg } :: !findings
    in
    let hint =
      "observability state (span buffers, metric cells) is confined to \
       lib/obs/; register cells through Obs.Metrics / Obs.Trace instead"
    in
    let scan_binding ~bind_line ~symbol (rhs : Parsetree.expression) =
      let named = r8_obs_name symbol in
      (* Same traversal discipline as R1/R7: skip function bodies
         (per-call state is local), flag state created at module
         init. *)
      let rec walk (e : Parsetree.expression) =
        let line = Source.line_of e.pexp_loc in
        match e.pexp_desc with
        | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> ()
        | Pexp_array _ when named ->
            add ~line ~bind_line ~symbol
              (Printf.sprintf
                 "toplevel binding '%s' holds observability state (bare \
                  array): %s"
                 symbol hint)
        | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, args) ->
            if r8_sanctioned txt then ()
            else begin
              let stateful =
                match split_qualified txt with
                | Some (md, fn) ->
                    List.mem md safe_wrapper_modules
                    || List.exists
                         (fun (m, fns) -> String.equal m md && List.mem fn fns)
                         mutable_constructors
                | None -> flatten txt = [ "ref" ]
              in
              if named && stateful then
                add ~line ~bind_line ~symbol
                  (Printf.sprintf
                     "toplevel binding '%s' holds observability state (%s): %s"
                     symbol
                     (String.concat "." (flatten txt))
                     hint)
              else List.iter (fun (_, a) -> walk a) args
            end
        | Pexp_record (fields, base) ->
            List.iter
              (fun (({ txt; _ } : Longident.t Location.loc), value) ->
                (match List.rev (flatten txt) with
                | fname :: _
                  when Hashtbl.mem mutable_fields fname
                       && (named || r8_obs_name fname) ->
                    add ~line ~bind_line ~symbol
                      (Printf.sprintf
                         "toplevel binding '%s' builds observability state \
                          (mutable field '%s'): %s"
                         symbol fname hint)
                | _ -> ());
                walk value)
              fields;
            Option.iter walk base
        | _ ->
            let it =
              {
                Ast_iterator.default_iterator with
                expr = (fun _ child -> walk child);
              }
            in
            Ast_iterator.default_iterator.expr it e
      in
      walk rhs
    in
    List.iter
      (fun (vb : Parsetree.value_binding) ->
        match binding_name vb with
        | None -> ()
        | Some symbol ->
            if not (is_function_body vb.pvb_expr) then begin
              incr checks;
              scan_binding ~bind_line:(Source.line_of vb.pvb_loc) ~symbol
                vb.pvb_expr
            end)
      (toplevel_bindings file.Source.ast);
    resolve ~allow ~file ~rule:"R8" ~pass:r8_pass ~checks:(max 1 !checks)
      (List.rev !findings)
  end

(* ------------------------------------------------------------------ *)
(* Annotation hygiene: a malformed annotation (no reason, or a typo
   after "domlint:") must not silently suppress nothing.               *)

let hygiene_pass = "domlint/annotation"

let check_annotations (file : Source.t) =
  let violations =
    List.filter_map
      (fun (ann : Suppress.annotation) ->
        if ann.Suppress.reason = None then
          Some
            {
              Violation.pass = hygiene_pass;
              subject =
                Printf.sprintf "%s:%d" file.Source.rel ann.Suppress.first_line;
              message =
                "malformed domlint annotation: expected \"domlint: safe \
                 [RN] — reason\" with a non-empty reason";
            }
        else None)
      file.Source.annotations
  in
  {
    checks = max 1 (List.length file.Source.annotations);
    kept = violations;
    suppressed = 0;
  }
