(* R4: a syntactic lock-nesting graph across the scanned modules, with a
   cycle check — the deadlock guard for the upcoming serving daemon.

   Locks are tracked at module granularity: a module that ever calls
   [Mutex.lock] or [Mutex.protect] owns a lock node, and every toplevel
   function of that module whose body (transitively through local
   closures) locks is a "locking entry point". An edge A -> B is
   recorded whenever code in module A, at a point where A's lock is
   syntactically held, calls a locking entry point of module B —
   including nested [Mutex.lock] (self edge) and closures passed to the
   under-lock runners [Mutex.protect], [Util.Once.make] (the thunk runs
   under the cell's own mutex at force time) and
   [Util.Shard_map.find_or_add] (the make function runs under the shard
   lock).

   Held state is threaded syntactically: a [Mutex.lock] makes the rest
   of the enclosing sequence held, a [Mutex.unlock] releases it, and
   branches ([match]/[if]/[try]) are analyzed independently with the
   union of their exit states — conservative, so a lock released on only
   one branch stays held. Closures defined under a held lock are walked
   as held: they may well run before the unlock (e.g. Hashtbl.iter).

   A cycle A -> ... -> A means two domains can acquire the same locks in
   opposite orders: reported as a violation. *)

module Violation = Verify.Violation

let pass = "domlint/R4-lock-order"

type t = {
  (* (from, to) -> "file:line" of the first site that created the edge *)
  edges : (string * string, string) Hashtbl.t;
  lock_owners : (string, unit) Hashtbl.t;
  (* (module, function) -> () for every locking entry point *)
  entries : (string * string, unit) Hashtbl.t;
  mutable sites : int;  (** lock-held call sites examined *)
}

let flatten = Longident.flatten

let lid_ends_with lid suffix =
  let rec ends l s =
    match (l, s) with
    | _, [] -> true
    | x :: l', y :: s' -> String.equal x y && ends l' s'
    | [], _ -> false
  in
  ends (List.rev (flatten lid)) (List.rev suffix)

let is_lock lid = lid_ends_with lid [ "Mutex"; "lock" ]
let is_unlock lid = lid_ends_with lid [ "Mutex"; "unlock" ]
let is_protect lid = lid_ends_with lid [ "Mutex"; "protect" ]

(* Runner -> module whose lock the closure argument runs under. *)
let runner_owner lid =
  if is_protect lid then Some "Mutex"
  else if lid_ends_with lid [ "Once"; "make" ] then Some "Once"
  else if lid_ends_with lid [ "Shard_map"; "find_or_add" ] then
    Some "Shard_map"
  else None

let split_qualified lid =
  match List.rev (flatten lid) with
  | value :: md :: _ -> Some (md, value)
  | _ -> None

(* ---------------- pass 1: who owns locks, and through which entry
   points they are acquired ---------------- *)

let expr_locks (e : Parsetree.expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } when is_lock txt || is_protect txt ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let collect_entries t (file : Source.t) =
  let owns = ref false in
  List.iter
    (fun (vb : Parsetree.value_binding) ->
      if expr_locks vb.pvb_expr then begin
        owns := true;
        match Rules.binding_name vb with
        | Some name ->
            Hashtbl.replace t.entries (file.Source.module_name, name) ()
        | None -> ()
      end)
    (Rules.toplevel_bindings file.Source.ast);
  if !owns then Hashtbl.replace t.lock_owners file.Source.module_name ()

(* ---------------- pass 2: held-region walk recording edges --------- *)

let add_edge t ~site from into =
  t.sites <- t.sites + 1;
  if not (Hashtbl.mem t.edges (from, into)) then
    Hashtbl.add t.edges (from, into) site

(* Walk [e] with [held] the stack of lock-owner modules currently held;
   returns the held stack after [e]. *)
let walk_file t (file : Source.t) =
  let self = file.Source.module_name in
  let site loc =
    Printf.sprintf "%s:%d" file.Source.rel (Source.line_of loc)
  in
  let union a b =
    List.sort_uniq compare (a @ b)
  in
  let rec walk held (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_sequence (a, b) ->
        let held' = step held a in
        walk held' b
    | Pexp_let (_, vbs, body) ->
        let held' =
          List.fold_left (fun h (vb : Parsetree.value_binding) ->
              step h vb.pvb_expr)
            held vbs
        in
        walk held' body
    | Pexp_match (scrut, cases) | Pexp_try (scrut, cases) ->
        let held' = step held scrut in
        branches held' (List.map (fun (c : Parsetree.case) -> c.pc_rhs) cases)
    | Pexp_function cases ->
        branches held (List.map (fun (c : Parsetree.case) -> c.pc_rhs) cases)
    | Pexp_ifthenelse (cond, ift, ife) ->
        let held' = step held cond in
        branches held' (ift :: Option.to_list ife)
    | Pexp_fun (_, default_arg, _, body) ->
        Option.iter (fun d -> ignore (walk held d)) default_arg;
        (* Conservative: a closure built under a lock may run under it. *)
        ignore (walk held body);
        held
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, args) ->
        apply held ~loc:pexp_loc txt args
    | _ -> default held e

  (* One sequence/let step: evaluate [a] for its effect on the held
     stack. [Mutex.lock] pushes this module's lock, [Mutex.unlock] pops
     one level; anything else is walked normally. *)
  and step held (a : Parsetree.expression) =
    match a.pexp_desc with
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; pexp_loc; _ }, _)
      when is_lock txt ->
        if held <> [] then
          List.iter (fun h -> add_edge t ~site:(site pexp_loc) h self) held;
        self :: held
    | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
      when is_unlock txt -> (
        match held with [] -> [] | _ :: rest -> rest)
    | _ -> walk held a

  and branches held bodies =
    List.fold_left (fun acc body -> union acc (walk held body)) [] bodies
    |> fun exits -> if exits = [] then held else exits

  and apply held ~loc lid args =
    (match runner_owner lid with
    | Some owner ->
        (* The function-literal arguments run under [owner]'s lock. *)
        List.iter
          (fun ((_, a) : Asttypes.arg_label * Parsetree.expression) ->
            match a.pexp_desc with
            | Pexp_fun _ | Pexp_function _ ->
                if held <> [] then
                  List.iter
                    (fun h ->
                      if not (String.equal h owner) then
                        add_edge t ~site:(site loc) h owner)
                    held;
                ignore (walk (owner :: held) a)
            | _ -> ignore (walk held a))
          args
    | None ->
        (match split_qualified lid with
        | Some (md, fn)
          when held <> []
               && Hashtbl.mem t.lock_owners md
               && Hashtbl.mem t.entries (md, fn) ->
            List.iter (fun h -> add_edge t ~site:(site loc) h md) held
        | _ -> ());
        (* lock/unlock outside sequence position (e.g. a bare
           [Mutex.lock m] as a whole function body) still counts. *)
        if is_lock lid && held <> [] then
          List.iter (fun h -> add_edge t ~site:(site loc) h self) held;
        List.iter (fun (_, a) -> ignore (walk held a)) args);
    held

  and default held (e : Parsetree.expression) =
    (* Generic: thread the held stack through immediate children in
       syntactic order. *)
    let acc = ref held in
    let it =
      {
        Ast_iterator.default_iterator with
        expr = (fun _ child -> acc := walk !acc child);
      }
    in
    Ast_iterator.default_iterator.expr it e;
    !acc
  in
  List.iter
    (fun (vb : Parsetree.value_binding) -> ignore (walk [] vb.pvb_expr))
    (Rules.toplevel_bindings file.Source.ast)

(* ---------------- construction and the acyclicity check ------------- *)

let build files =
  let t =
    {
      edges = Hashtbl.create 16;
      lock_owners = Hashtbl.create 16;
      entries = Hashtbl.create 64;
      sites = 0;
    }
  in
  List.iter (collect_entries t) files;
  List.iter (walk_file t) files;
  t

let edges t =
  Hashtbl.fold (fun (a, b) site acc -> (a, b, site) :: acc) t.edges []
  |> List.sort compare

(* DFS cycle detection over the module nodes; every cycle found is one
   violation naming the full path and a witness site. *)
let check t =
  let adj = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (a, b) site ->
      let cur = Option.value (Hashtbl.find_opt adj a) ~default:[] in
      Hashtbl.replace adj a ((b, site) :: cur))
    t.edges;
  let color = Hashtbl.create 16 in
  let cycles = ref [] in
  let rec dfs path node =
    match Hashtbl.find_opt color node with
    | Some `Done -> ()
    | Some `Active ->
        (* The cycle is the path segment from this re-entry of [node]
           back to its previous occurrence (or the DFS root). *)
        let rec take acc = function
          | [] -> List.rev acc
          | (n, s) :: rest ->
              if String.equal n node && acc <> [] then List.rev acc
              else take ((n, s) :: acc) rest
        in
        cycles := take [] path :: !cycles
    | None ->
        Hashtbl.replace color node `Active;
        List.iter
          (fun (next, site) -> dfs ((next, site) :: path) next)
          (Option.value (Hashtbl.find_opt adj node) ~default:[]);
        Hashtbl.replace color node `Done
  in
  Hashtbl.iter (fun (a, _) _ -> if not (Hashtbl.mem color a) then dfs [] a) t.edges;
  let violations =
    List.map
      (fun cycle ->
        let names = List.map fst cycle in
        let path =
          String.concat " -> " (names @ [ List.hd names ])
        in
        let sites = String.concat ", " (List.map snd cycle) in
        {
          Violation.pass;
          subject = path;
          message =
            Printf.sprintf
              "lock-order cycle: %s (acquisition sites: %s) — two domains \
               can deadlock by acquiring these locks in opposite orders"
              path sites;
        })
      (List.sort_uniq compare !cycles)
  in
  { Violation.checks = t.sites + Hashtbl.length t.edges + 1; violations }
