(* Suppression plumbing for the source lint: the two sanctioned ways to
   silence a finding, both of which leave a reviewable trace.

   1. An inline annotation comment placed on the offending line or the
      line directly above it:

        (* domlint: safe — guarded by sample_lock *)

      The reason after the dash is mandatory; an annotation without one
      is itself reported. An optional rule tag, bare or bracketed,
      restricts the annotation to one rule:
      [(* domlint: safe R1 — reason *)].

   2. An entry in the committed allowlist (lint/allowlist.ml), matched
      by rule, path suffix, and binding symbol ("*" wildcards either).
      Entries that match nothing are reported as stale, so the
      allowlist can only shrink as the tree gets cleaned up. *)

type entry = {
  rule : string;  (** "R1".."R6", or "*" for any rule *)
  file : string;  (** path suffix, e.g. "lib/datagen/vocab.ml" *)
  symbol : string;  (** toplevel binding name, or "*" for the file *)
  reason : string;  (** one-line justification; never empty *)
}

type allowlist = { entries : entry array; used : bool array }

let allowlist entries =
  let entries = Array.of_list entries in
  { entries; used = Array.make (Array.length entries) false }

(* [path] uses '/' separators; suffix match so callers may scan from any
   root ("../lib/util/once.ml" still matches "lib/util/once.ml"). *)
let path_matches ~pattern path =
  String.equal pattern path
  || (String.length path > String.length pattern
     && String.ends_with ~suffix:("/" ^ pattern) path)

let allow_matches t ~rule ~path ~symbol =
  let hit = ref false in
  Array.iteri
    (fun i e ->
      if
        (String.equal e.rule "*" || String.equal e.rule rule)
        && path_matches ~pattern:e.file path
        && (String.equal e.symbol "*" || String.equal e.symbol symbol)
      then begin
        t.used.(i) <- true;
        hit := true
      end)
    t.entries;
  !hit

let unused t =
  let out = ref [] in
  Array.iteri
    (fun i e -> if not t.used.(i) then out := e :: !out)
    t.entries;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Inline annotations                                                  *)

type annotation = {
  first_line : int;
  last_line : int;
  a_rule : string;  (** "*" unless the comment names a rule *)
  reason : string option;  (** [None] marks a malformed annotation *)
}

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let trim_comment text =
  (* Comment text may arrive with or without its (* *) delimiters,
     depending on the lexer version. *)
  let text = String.trim text in
  let text =
    if String.length text >= 2 && String.sub text 0 2 = "(*" then
      String.sub text 2 (String.length text - 2)
    else text
  in
  let text =
    if
      String.length text >= 2
      && String.sub text (String.length text - 2) 2 = "*)"
    then String.sub text 0 (String.length text - 2)
    else text
  in
  String.trim text

let drop_prefix ~prefix s =
  if String.length s >= String.length prefix
     && String.equal (String.sub s 0 (String.length prefix)) prefix
  then Some (String.sub s (String.length prefix) (String.length s - String.length prefix))
  else None

(* Parse "domlint: safe [RN] <dash> reason". Returns [None] for comments
   that are not domlint annotations at all. *)
let parse_comment ~first_line ~last_line text =
  match drop_prefix ~prefix:"domlint:" (trim_comment text) with
  | None -> None
  | Some rest -> (
      let rest = String.trim rest in
      match drop_prefix ~prefix:"safe" rest with
      | None ->
          (* "domlint:" followed by anything else is a typo worth
             flagging rather than silently ignoring. *)
          Some { first_line; last_line; a_rule = "*"; reason = None }
      | Some rest ->
          let rest = String.trim rest in
          (* The rule tag may be bare ("R1") or bracketed ("[R1]"). *)
          let tag_at rest i =
            String.length rest >= i + 2
            && rest.[i] = 'R'
            && rest.[i + 1] >= '1'
            && rest.[i + 1] <= '9'
          in
          let a_rule, rest =
            if
              String.length rest >= 4
              && rest.[0] = '['
              && tag_at rest 1
              && rest.[3] = ']'
            then
              ( String.sub rest 1 2,
                String.trim (String.sub rest 4 (String.length rest - 4)) )
            else if
              tag_at rest 0 && (String.length rest = 2 || is_space rest.[2])
            then
              ( String.sub rest 0 2,
                String.trim (String.sub rest 2 (String.length rest - 2)) )
            else ("*", rest)
          in
          (* Accept an em dash, en dash, hyphen or colon as separator. *)
          let reason =
            let strip seps s =
              List.find_map (fun sep -> drop_prefix ~prefix:sep s) seps
            in
            match strip [ "\xe2\x80\x94"; "\xe2\x80\x93"; "--"; "-"; ":" ] rest with
            | Some r ->
                let r = String.trim r in
                if String.equal r "" then None else Some r
            | None -> None
          in
          Some { first_line; last_line; a_rule; reason })

(* A finding anchored at [line] (or whose enclosing binding starts at
   [bind_line]) is covered when a well-formed annotation for its rule
   sits on that line or directly above it. *)
let annotation_covers ann ~rule ~line ~bind_line =
  ann.reason <> None
  && (String.equal ann.a_rule "*" || String.equal ann.a_rule rule)
  && List.exists
       (fun l -> l >= ann.first_line && l <= ann.last_line + 1)
       [ line; bind_line ]
