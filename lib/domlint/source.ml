(* One parsed source file, ready for the rule passes: the Parsetree (via
   compiler-libs, the same frontend the build uses, so nothing the lint
   sees can disagree with what compiles), plus every domlint annotation
   comment with its line span. *)

type t = {
  path : string;  (** as passed in, used in reports *)
  rel : string;  (** normalized with '/' separators for allowlist match *)
  module_name : string;  (** capitalized basename, e.g. "Once" *)
  ast : Parsetree.structure;
  annotations : Suppress.annotation list;
}

type parse_error = { err_path : string; err_line : int; err_msg : string }

let line_of (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum
let last_line_of (loc : Location.t) = loc.Location.loc_end.Lexing.pos_lnum

let normalize path = String.concat "/" (String.split_on_char '\\' path)

let module_name_of path =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse path =
  let text = read_file path in
  let lexbuf = Lexing.from_string text in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | ast ->
      let annotations =
        List.filter_map
          (fun (text, loc) ->
            Suppress.parse_comment ~first_line:(line_of loc)
              ~last_line:(last_line_of loc) text)
          (Lexer.comments ())
      in
      Ok { path; rel = normalize path; module_name = module_name_of path; ast; annotations }
  | exception Syntaxerr.Error err ->
      let loc = Syntaxerr.location_of_error err in
      Error { err_path = path; err_line = line_of loc; err_msg = "syntax error" }
  | exception Lexer.Error (_, loc) ->
      Error { err_path = path; err_line = line_of loc; err_msg = "lexical error" }
  | exception e ->
      Error { err_path = path; err_line = 1; err_msg = Printexc.to_string e }

(* ------------------------------------------------------------------ *)
(* Tree walking                                                        *)

(* Every [.ml] under the given directories, skipping dot- and
   underscore-prefixed entries (editor droppings, _build). Sorted so
   reports are deterministic regardless of readdir order. *)
let files_under ~root ~dirs =
  let out = ref [] in
  let rec walk dir =
    match Sys.readdir dir with
    | entries ->
        Array.sort compare entries;
        Array.iter
          (fun entry ->
            if String.length entry > 0 && entry.[0] <> '.' && entry.[0] <> '_'
            then begin
              let path = Filename.concat dir entry in
              if Sys.is_directory path then walk path
              else if Filename.check_suffix entry ".ml" then
                out := path :: !out
            end)
          entries
    | exception Sys_error _ -> ()
  in
  List.iter
    (fun d ->
      let dir = Filename.concat root d in
      if Sys.file_exists dir && Sys.is_directory dir then walk dir)
    dirs;
  List.sort compare !out
