(* Domlint: a domain-safety static-analysis pass over the source tree
   itself — the source-code sibling of the plan/estimate/cost sanitizers
   in lib/verify. It parses every .ml under lib/, bin/ and bench/ with
   compiler-libs and enforces the concurrency invariants the multicore
   harness depends on:

     R1  no bare module-toplevel mutable state
     R2  no lazy/Lazy.* outside Util.Once's implementation
     R3  no global Random.* outside Util.Prng's implementation
     R4  the cross-module lock-nesting graph must be acyclic
     R5  no Domain.spawn outside Util.Domain_pool's implementation
     R6  no Atomic.fetch_and_add (shared scheduler state) outside
         Util.Domain_pool's and Exec.Morsel's implementations
     R7  serving-session bookkeeping (session/conn/admission/inflight/
         lru-named state) confined to lib/serve and Exec.Join_cache
     R8  observability state (metric/span/trace/telemetry-named state)
         confined to lib/obs; registering cells through the Obs API is
         sanctioned

   Findings report through {!Verify.Violation}, so `jobench lint` can
   print source findings and workload-graph findings in one format.
   Suppressions (inline annotations and the committed allowlist) are
   documented in {!Suppress}. *)

module Suppress = Suppress
module Source = Source
module Rules = Rules
module Lock_graph = Lock_graph
module Violation = Verify.Violation

type rule_stat = {
  rule : string;  (** e.g. "R1-toplevel-mutable-state" *)
  checks : int;
  violations : int;
  suppressed : int;
}

type report = {
  files : int;
  result : Violation.result;  (** merged, post-suppression *)
  stats : rule_stat list;  (** per rule, reporting order *)
  lock_edges : (string * string * string) list;  (** from, to, site *)
}

let ok r = Violation.ok r.result

(* The directories the issue scopes the pass to. *)
let default_dirs = [ "lib"; "bin"; "bench" ]

let files_under ?(dirs = default_dirs) ~root () =
  Source.files_under ~root ~dirs

let scan ?(allow = []) paths =
  let allow = Suppress.allowlist allow in
  let parsed, parse_errors =
    List.fold_left
      (fun (ok, errs) path ->
        match Source.parse path with
        | Ok f -> (f :: ok, errs)
        | Error e -> (ok, e :: errs))
      ([], []) paths
  in
  let files = List.rev parsed in
  let parse_result =
    {
      Violation.checks = List.length paths;
      violations =
        List.rev_map
          (fun (e : Source.parse_error) ->
            {
              Violation.pass = "domlint/parse";
              subject = Printf.sprintf "%s:%d" e.Source.err_path e.Source.err_line;
              message = e.Source.err_msg;
            })
          parse_errors;
    }
  in
  let mutable_fields = Rules.collect_mutable_fields files in
  let per_rule name f =
    let results = List.map f files in
    let checks = List.fold_left (fun a (r : Rules.rule_result) -> a + r.Rules.checks) 0 results in
    let suppressed =
      List.fold_left (fun a (r : Rules.rule_result) -> a + r.Rules.suppressed) 0 results
    in
    let violations = List.concat_map (fun (r : Rules.rule_result) -> r.Rules.kept) results in
    ( { rule = name; checks; violations = List.length violations; suppressed },
      { Violation.checks; violations } )
  in
  let r1 = per_rule "R1-toplevel-mutable-state" (Rules.check_r1 ~allow ~mutable_fields) in
  let r2 = per_rule "R2-lazy" (Rules.check_r2 ~allow) in
  let r3 = per_rule "R3-global-random" (Rules.check_r3 ~allow) in
  let graph = Lock_graph.build files in
  let r4_result = Lock_graph.check graph in
  let r4 =
    ( {
        rule = "R4-lock-order";
        checks = r4_result.Violation.checks;
        violations = List.length r4_result.Violation.violations;
        suppressed = 0;
      },
      r4_result )
  in
  let r5 = per_rule "R5-domain-spawn" (Rules.check_r5 ~allow) in
  let r6 = per_rule "R6-scheduler-state" (Rules.check_r6 ~allow) in
  let r7 = per_rule "R7-serving-state" (Rules.check_r7 ~allow ~mutable_fields) in
  let r8 = per_rule "R8-observability-state" (Rules.check_r8 ~allow ~mutable_fields) in
  let hygiene = per_rule "annotation" (fun f -> Rules.check_annotations f) in
  (* Allowlist entries that matched nothing are stale: report them so
     the committed list can only shrink as the tree gets cleaned. *)
  let stale =
    List.map
      (fun (e : Suppress.entry) ->
        {
          Violation.pass = "domlint/allowlist";
          subject = Printf.sprintf "%s/%s" e.Suppress.file e.Suppress.symbol;
          message =
            Printf.sprintf
              "stale allowlist entry (rule %s, reason: %s): it suppresses \
               nothing — delete it"
              e.Suppress.rule e.Suppress.reason;
        })
      (Suppress.unused allow)
  in
  let stale_result =
    {
      Violation.checks = Array.length allow.Suppress.entries;
      violations = stale;
    }
  in
  let stats_and_results = [ r1; r2; r3; r4; r5; r6; r7; r8; hygiene ] in
  let stats =
    List.map fst stats_and_results
    @ [
        {
          rule = "allowlist";
          checks = stale_result.Violation.checks;
          violations = List.length stale;
          suppressed = 0;
        };
        {
          rule = "parse";
          checks = parse_result.Violation.checks;
          violations = List.length parse_result.Violation.violations;
          suppressed = 0;
        };
      ]
  in
  {
    files = List.length paths;
    result =
      Violation.merge_all
        ((parse_result :: List.map snd stats_and_results) @ [ stale_result ]);
    stats;
    lock_edges = Lock_graph.edges graph;
  }

let scan_tree ?(allow = []) ?(dirs = default_dirs) ~root () =
  scan ~allow (files_under ~dirs ~root ())

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let pp_report fmt r =
  Format.fprintf fmt "domlint: %d files, %d checks, %d violations@." r.files
    r.result.Violation.checks
    (List.length r.result.Violation.violations);
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-26s %6d checks %3d violations %3d suppressed@."
        s.rule s.checks s.violations s.suppressed)
    r.stats;
  if r.lock_edges <> [] then begin
    Format.fprintf fmt "  lock-nesting graph (%d edges, acyclic unless reported):@."
      (List.length r.lock_edges);
    List.iter
      (fun (a, b, site) -> Format.fprintf fmt "    %s -> %s (%s)@." a b site)
      r.lock_edges
  end;
  List.iter
    (fun v -> Format.fprintf fmt "  %s@." (Violation.to_string v))
    r.result.Violation.violations

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Machine-readable report for the CI artifact, same spirit as the
   BENCH_*.json files. *)
let report_json ?(workload = []) r =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"files_scanned\": %d,\n" r.files);
  Buffer.add_string b
    (Printf.sprintf "  \"checks\": %d,\n" r.result.Violation.checks);
  Buffer.add_string b
    (Printf.sprintf "  \"violations\": %d,\n"
       (List.length r.result.Violation.violations));
  Buffer.add_string b "  \"rules\": [\n";
  List.iteri
    (fun i s ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"rule\": \"%s\", \"checks\": %d, \"violations\": %d, \
            \"suppressed\": %d}%s\n"
           (json_escape s.rule) s.checks s.violations s.suppressed
           (if i = List.length r.stats - 1 then "" else ",")))
    r.stats;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"lock_edges\": [\n";
  List.iteri
    (fun i (a, bb, site) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"from\": \"%s\", \"to\": \"%s\", \"site\": \"%s\"}%s\n"
           (json_escape a) (json_escape bb) (json_escape site)
           (if i = List.length r.lock_edges - 1 then "" else ",")))
    r.lock_edges;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"workload\": [\n";
  List.iteri
    (fun i (label, queries, (res : Violation.result)) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"label\": \"%s\", \"queries\": %d, \"checks\": %d, \
            \"violations\": %d}%s\n"
           (json_escape label) queries res.Violation.checks
           (List.length res.Violation.violations)
           (if i = List.length workload - 1 then "" else ",")))
    workload;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"details\": [\n";
  let vs = r.result.Violation.violations in
  List.iteri
    (fun i (v : Violation.t) ->
      Buffer.add_string b
        (Printf.sprintf
           "    {\"pass\": \"%s\", \"subject\": \"%s\", \"message\": \"%s\"}%s\n"
           (json_escape v.Violation.pass)
           (json_escape v.Violation.subject)
           (json_escape v.Violation.message)
           (if i = List.length vs - 1 then "" else ",")))
    vs;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b
