module Bitset = Util.Bitset
module QG = Query.Query_graph
module Analyze = Dbstats.Analyze
module CS = Dbstats.Column_stats

type context = {
  db : Storage.Database.t;
  graph : QG.t;
}

let names = [ "PostgreSQL"; "DBMS A"; "DBMS B"; "DBMS C"; "HyPer" ]

let table_of ctx rel = (QG.relation ctx.graph rel).QG.table

let rows_of ctx rel = float_of_int (Storage.Table.row_count (table_of ctx rel))

let column_stats analyze ctx ~rel ~col =
  Analyze.column analyze ~table:(Storage.Table.name (table_of ctx rel)) ~col

let dom_function analyze ctx ~exact ~rel ~col =
  let cs = column_stats analyze ctx ~rel ~col in
  if exact then cs.CS.distinct_exact else cs.CS.distinct_sampled

(* ------------------------------------------------------------------ *)
(* Statistics-based base estimation (PostgreSQL style)                  *)

let stats_base ?(magic = Selectivity.pg_magic) analyze ctx rel =
  let relation = QG.relation ctx.graph rel in
  let table = relation.QG.table in
  let stats_of col =
    Analyze.column analyze ~table:(Storage.Table.name table) ~col
  in
  let sel =
    Selectivity.conjunction ~stats_of ~table ~magic relation.QG.preds
  in
  sel *. rows_of ctx rel

(* ------------------------------------------------------------------ *)
(* Sample-based base estimation (HyPer / DBMS A style)                  *)

(* Evaluating the whole conjunction on one sample captures intra-table
   correlations — the reason these two systems dominate Table 1. *)
let sample_base ~sample_size ~fallback ~seed ctx =
  let prng = Util.Prng.create seed in
  let samples : (string, Dbstats.Sample.t) Hashtbl.t = Hashtbl.create 16 in
  fun rel ->
    let relation = QG.relation ctx.graph rel in
    let table = relation.QG.table in
    let name = Storage.Table.name table in
    let sample =
      match Hashtbl.find_opt samples name with
      | Some s -> s
      | None ->
          let s = Dbstats.Sample.take prng table ~size:sample_size in
          Hashtbl.add samples name s;
          s
    in
    let pred = Query.Predicate.compile table relation.QG.preds in
    let matches = Dbstats.Sample.evaluate sample table pred in
    let selectivity =
      if matches > 0 then
        float_of_int matches /. float_of_int (Dbstats.Sample.size sample)
      else if relation.QG.preds = [] then 1.0
      else fallback (* zero rows on the sample: magic constant *)
    in
    selectivity *. rows_of ctx rel

(* ------------------------------------------------------------------ *)
(* Systems                                                              *)

let postgres ?(true_distinct = false) analyze ctx =
  let name = if true_distinct then "PostgreSQL (true distinct)" else "PostgreSQL" in
  Estimator.compositional ~name ~graph:ctx.graph
    ~base:(stats_base analyze ctx)
    ~edge_selectivity:
      (Estimator.textbook_edge_selectivity
         ~dom:(dom_function analyze ctx ~exact:true_distinct))
    ~combine:Estimator.Independence ~rounding:Estimator.Clamp_one ()

let hyper analyze ctx =
  Estimator.compositional ~name:"HyPer" ~graph:ctx.graph
    ~base:(sample_base ~sample_size:1_000 ~fallback:0.002 ~seed:271 ctx)
    ~edge_selectivity:
      (Estimator.textbook_edge_selectivity
         ~dom:(dom_function analyze ctx ~exact:true))
    ~combine:Estimator.Independence ~rounding:Estimator.Clamp_one ()

let dbms_a_damping = 0.85

let dbms_a_damped damping analyze ctx =
  Estimator.compositional
    ~name:(Printf.sprintf "DBMS A (damping %.2f)" damping)
    ~graph:ctx.graph
    ~base:(sample_base ~sample_size:5_000 ~fallback:0.0004 ~seed:577 ctx)
    ~edge_selectivity:
      (Estimator.textbook_edge_selectivity
         ~dom:(dom_function analyze ctx ~exact:true))
    ~combine:(Estimator.Backoff damping) ~rounding:Estimator.Clamp_one ()

let dbms_a analyze ctx =
  { (dbms_a_damped dbms_a_damping analyze ctx) with Estimator.name = "DBMS A" }

let coarse_analyze db =
  Analyze.create ~seed:99 ~sample_size:2_000 ~buckets:10 ~mcv_entries:5 db

(* DBMS B: per-attribute uniformity with no MCVs for string equality,
   crude magic constants, an extra per-join fudge factor, and
   floor-to-integer rounding — the paper's "frequently estimates 1 row
   beyond 2 joins" system. *)
let dbms_b coarse ctx =
  let magic =
    { Selectivity.like_contains = 0.15; like_prefix = 0.25; default_range = 0.4 }
  in
  let base rel =
    let relation = QG.relation ctx.graph rel in
    let table = relation.QG.table in
    let stats_of col = Analyze.column coarse ~table:(Storage.Table.name table) ~col in
    let atom_sel (a : Query.Predicate.atom) =
      match a with
      | Query.Predicate.Cmp { op = Query.Predicate.Eq; col; _ }
        when Storage.Column.dict (Storage.Table.column table col) <> None ->
          (* Uniformity over the (under-)estimated distinct count;
             ignores skew entirely. *)
          1.0 /. Float.max 1.0 (stats_of col).CS.distinct_sampled
      | _ -> Selectivity.atom ~stats:(stats_of (Option.value ~default:0 (Query.Predicate.atom_column a))) ~table ~magic a
    in
    let sel = List.fold_left (fun acc a -> acc *. atom_sel a) 1.0 relation.QG.preds in
    sel *. rows_of ctx rel
  in
  let textbook =
    Estimator.textbook_edge_selectivity
      ~dom:(dom_function coarse ctx ~exact:false)
  in
  Estimator.compositional ~name:"DBMS B" ~graph:ctx.graph ~base
    ~edge_selectivity:(fun e -> 0.35 *. textbook e)
    ~combine:Estimator.Independence ~rounding:Estimator.Floor_one ()

(* DBMS C: optimistic magic constants and a per-atom selectivity floor —
   correct medians, a heavy overestimation tail. *)
let dbms_c analyze ctx =
  let magic =
    { Selectivity.like_contains = 0.25; like_prefix = 0.3; default_range = 0.5 }
  in
  let base rel =
    let relation = QG.relation ctx.graph rel in
    let table = relation.QG.table in
    let stats_of col = Analyze.column analyze ~table:(Storage.Table.name table) ~col in
    let sel =
      List.fold_left
        (fun acc a ->
          match Query.Predicate.atom_column a with
          | Some col ->
              let s = Selectivity.atom ~stats:(stats_of col) ~table ~magic a in
              acc *. Float.max s 0.02
          | None -> acc *. 0.02)
        1.0 relation.QG.preds
    in
    sel *. rows_of ctx rel
  in
  Estimator.compositional ~name:"DBMS C" ~graph:ctx.graph ~base
    ~edge_selectivity:
      (Estimator.textbook_edge_selectivity
         ~dom:(dom_function analyze ctx ~exact:false))
    ~combine:Estimator.Independence ~rounding:Estimator.Clamp_one ()

let by_name ?true_distinct analyze ctx name =
  match name with
  | "PostgreSQL" -> postgres ?true_distinct analyze ctx
  | "DBMS A" -> dbms_a analyze ctx
  | "DBMS B" -> dbms_b (coarse_analyze ctx.db) ctx
  | "DBMS C" -> dbms_c analyze ctx
  | "HyPer" -> hyper analyze ctx
  | other -> invalid_arg (Printf.sprintf "Systems.by_name: unknown system %s" other)
