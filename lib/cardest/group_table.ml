(* A multiset of fixed-arity integer tuples with float multiplicities —
   the aggregation kernel behind {!True_card}.

   The polymorphic [(int array, float) Hashtbl.t] it replaces allocated
   one key array per input row and re-dispatched the polymorphic hash on
   every probe. Here a probe allocates nothing: the caller fills a
   reusable scratch key, narrow keys (arity <= 2) pack into a single
   non-negative int compared directly, and wider keys are interned into
   a flat arena compared word-by-word. Groups are numbered densely in
   insertion order, so multiplicities live in a plain float array and
   iteration order is deterministic. *)

let null_code = Storage.Value.null_code

module Packed = struct
  (* Column codes are non-negative (dictionary codes, generated ids) or
     [null_code]; encoding shifts them by one so NULL gets slot 0 and
     every encoded value — and every packed key — stays non-negative
     (the "negative-free" invariant: a packed key never collides with
     the table's negative empty-slot sentinel). *)
  let encode v = if v = null_code then 0 else v + 1

  let decode e = if e = 0 then null_code else e - 1

  (* Encodable at all: NULL, or a value whose encoding fits an OCaml
     int without wrapping. Negative non-NULL codes are not encodable —
     they would collide with the shifted non-negatives. *)
  let fits v = v = null_code || (v >= 0 && v < max_int)

  let field_bits = 31

  let field_mask = (1 lsl field_bits) - 1

  (* Encodable into one of the two 31-bit fields of a packed pair. *)
  let fits2 v = v = null_code || (v >= 0 && v < field_mask)

  let pack2 a b = (encode a lsl field_bits) lor encode b

  let unpack2_fst k = decode (k lsr field_bits)

  let unpack2_snd k = decode (k land field_mask)
end

type t = {
  arity : int;
  (* Narrow keys start packed; the first value that does not fit
     migrates the whole table to the arena representation. *)
  mutable packed : bool;
  (* Open addressing, linear probing: slot -> group id, -1 empty. *)
  mutable slots : int array;
  mutable mask : int;
  mutable n : int;
  (* Packed mode: one word per group. Arena mode: [arity] words. *)
  mutable keys : int array;
  mutable counts : float array;
  scratch : int array;
}

let arity t = t.arity

let groups t = t.n

let scratch t = t.scratch

let is_packed t = t.packed

(* SplitMix64 finalizer truncated to OCaml's int; the identity hash
   would cluster consecutive ids into colliding runs. *)
let mix x =
  let open Int64 in
  let z = of_int x in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (logxor z (shift_right_logical z 31)) land Stdlib.max_int

let next_pow2 x =
  let rec go p = if p >= x then p else go (p * 2) in
  go 16

let create ?(expected = 16) ~arity () =
  if arity < 0 then invalid_arg "Group_table.create: negative arity";
  let cap = next_pow2 (2 * max 1 expected) in
  {
    arity;
    packed = arity <= 2;
    slots = Array.make cap (-1);
    mask = cap - 1;
    n = 0;
    keys = Array.make (max 1 (cap / 2) * max 1 arity) 0;
    counts = Array.make (max 1 (cap / 2)) 0.0;
    scratch = Array.make (max 1 arity) 0;
  }

(* Packed key of the scratch tuple, or -1 when a value does not fit. *)
let pack_scratch t =
  match t.arity with
  | 0 -> 0
  | 1 ->
      let v = t.scratch.(0) in
      if Packed.fits v then Packed.encode v else -1
  | _ ->
      let a = t.scratch.(0) and b = t.scratch.(1) in
      if Packed.fits2 a && Packed.fits2 b then Packed.pack2 a b else -1

let hash_scratch_arena t =
  let h = ref 0 in
  for f = 0 to t.arity - 1 do
    h := mix ((!h * 31) lxor t.scratch.(f))
  done;
  !h

let hash_of_group t id =
  if t.packed then mix t.keys.(id)
  else begin
    let h = ref 0 in
    let base = id * t.arity in
    for f = 0 to t.arity - 1 do
      h := mix ((!h * 31) lxor t.keys.(base + f))
    done;
    !h
  end

let rebuild_slots t =
  Array.fill t.slots 0 (Array.length t.slots) (-1);
  for id = 0 to t.n - 1 do
    let i = ref (hash_of_group t id land t.mask) in
    while t.slots.(!i) >= 0 do
      i := (!i + 1) land t.mask
    done;
    t.slots.(!i) <- id
  done

(* Grow the slot array when load reaches 1/2. *)
let maybe_grow t =
  if 2 * (t.n + 1) > Array.length t.slots then begin
    let cap = 2 * Array.length t.slots in
    t.slots <- Array.make cap (-1);
    t.mask <- cap - 1;
    rebuild_slots t
  end

let group_capacity t = Array.length t.counts

let grow_groups t =
  if t.n = group_capacity t then begin
    let cap = 2 * group_capacity t in
    let keys = Array.make (cap * max 1 (if t.packed then 1 else t.arity)) 0 in
    Array.blit t.keys 0 keys 0 (Array.length t.keys);
    t.keys <- keys;
    let counts = Array.make cap 0.0 in
    Array.blit t.counts 0 counts 0 t.n;
    t.counts <- counts
  end

(* A scratch value did not fit the packed representation: unpack every
   stored key into the arena layout and stay there. *)
let migrate_to_arena t =
  assert t.packed;
  let keys = Array.make (max 1 (group_capacity t * t.arity)) 0 in
  for id = 0 to t.n - 1 do
    let k = t.keys.(id) in
    (match t.arity with
    | 1 -> keys.(id) <- Packed.decode k
    | 2 ->
        keys.(2 * id) <- Packed.unpack2_fst k;
        keys.((2 * id) + 1) <- Packed.unpack2_snd k
    | _ -> assert false);
    ()
  done;
  t.keys <- keys;
  t.packed <- false;
  rebuild_slots t

let scratch_equals_group t id =
  let base = id * t.arity in
  let rec go f =
    f = t.arity || (t.keys.(base + f) = t.scratch.(f) && go (f + 1))
  in
  go 0

(* Slot holding the scratch key, or the empty slot where it belongs. *)
let locate_packed t k =
  let i = ref (mix k land t.mask) in
  while
    let id = t.slots.(!i) in
    id >= 0 && t.keys.(id) <> k
  do
    i := (!i + 1) land t.mask
  done;
  !i

let locate_arena t =
  let i = ref (hash_scratch_arena t land t.mask) in
  while
    let id = t.slots.(!i) in
    id >= 0 && not (scratch_equals_group t id)
  do
    i := (!i + 1) land t.mask
  done;
  !i

let find_scratch t =
  if t.packed then begin
    let k = pack_scratch t in
    if k < 0 then 0.0
    else
      let id = t.slots.(locate_packed t k) in
      if id < 0 then 0.0 else t.counts.(id)
  end
  else
    let id = t.slots.(locate_arena t) in
    if id < 0 then 0.0 else t.counts.(id)

let add_scratch t delta =
  maybe_grow t;
  let k = if t.packed then pack_scratch t else -1 in
  if t.packed && k < 0 then migrate_to_arena t;
  let slot = if t.packed then locate_packed t k else locate_arena t in
  let id = t.slots.(slot) in
  if id >= 0 then t.counts.(id) <- t.counts.(id) +. delta
  else begin
    grow_groups t;
    let id = t.n in
    t.n <- id + 1;
    if t.packed then t.keys.(id) <- k
    else Array.blit t.scratch 0 t.keys (id * t.arity) t.arity;
    t.counts.(id) <- delta;
    t.slots.(slot) <- id
  end

let count t id = t.counts.(id)

let component t id f =
  if t.packed then begin
    let k = t.keys.(id) in
    match t.arity with
    | 1 -> Packed.decode k
    | _ -> if f = 0 then Packed.unpack2_fst k else Packed.unpack2_snd k
  end
  else t.keys.((id * t.arity) + f)

let iter t f =
  for id = 0 to t.n - 1 do
    f id t.counts.(id)
  done

let total t =
  let acc = ref 0.0 in
  for id = 0 to t.n - 1 do
    acc := !acc +. t.counts.(id)
  done;
  !acc
