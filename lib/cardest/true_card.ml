module Bitset = Util.Bitset
module QG = Query.Query_graph
module GT = Group_table

(* Subset-keyed memo with Bitset's own int hash (the polymorphic hash
   would re-dispatch on every probe of the hottest table here). *)
module Subset_table = Hashtbl.Make (Bitset)

type t = {
  graph : QG.t;
  cards : float Subset_table.t;
}

(* ------------------------------------------------------------------ *)
(* Join-attribute equivalence classes                                  *)

(* Union-find over (relation, column) pairs connected by join edges. *)
module Classes = struct
  type uf = { parents : (int * int, int * int) Hashtbl.t }

  let rec find uf x =
    match Hashtbl.find_opt uf.parents x with
    | None -> x
    | Some p when p = x -> x
    | Some p ->
        let root = find uf p in
        Hashtbl.replace uf.parents x root;
        root

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then Hashtbl.replace uf.parents ra rb

  let ensure uf x = if not (Hashtbl.mem uf.parents x) then Hashtbl.add uf.parents x x

  (* Per-relation sorted (class id, column) pairs for one subset — as
     two parallel arrays, since the counting kernels scan them in tight
     loops — derived from the join edges {e inside} that subset only.
     Using in-subset edges (not the whole query's transitive closure)
     matches the semantics of the executor and the enumerator: a
     subexpression applies exactly the join predicates whose both sides
     it contains. *)
  let build_subset graph s =
    let uf = { parents = Hashtbl.create 16 } in
    let in_subset (e : QG.edge) =
      Util.Bitset.mem e.QG.left s && Util.Bitset.mem e.QG.right s
    in
    let edges = List.filter in_subset (QG.edges graph) in
    List.iter
      (fun (e : QG.edge) ->
        let a = (e.QG.left, e.QG.left_col) and b = (e.QG.right, e.QG.right_col) in
        ensure uf a;
        ensure uf b;
        union uf a b)
      edges;
    let class_of_root = Hashtbl.create 16 in
    let next = ref 0 in
    let class_id pair =
      let root = find uf pair in
      match Hashtbl.find_opt class_of_root root with
      | Some id -> id
      | None ->
          let id = !next in
          incr next;
          Hashtbl.add class_of_root root id;
          id
    in
    let n = QG.n_relations graph in
    let pairs = Array.make n [] in
    List.iter
      (fun (e : QG.edge) ->
        List.iter
          (fun (r, col) ->
            let c = class_id (r, col) in
            if not (List.mem_assoc c pairs.(r)) then
              pairs.(r) <- (c, col) :: pairs.(r))
          [ (e.QG.left, e.QG.left_col); (e.QG.right, e.QG.right_col) ])
      edges;
    Array.map
      (fun ps ->
        let ps = List.sort compare ps in
        (Array.of_list (List.map fst ps), Array.of_list (List.map snd ps)))
      pairs
end

let array_mem x a = Array.exists (fun y -> y = x) a

(* ------------------------------------------------------------------ *)
(* Compressed relations: multiplicity per join-class value tuple       *)

type compressed = {
  classes : int array; (* sorted class ids; key positions correspond *)
  groups : GT.t;
}

let positions ~from ~wanted =
  Array.map
    (fun c ->
      let rec go i =
        if i >= Array.length from then
          invalid_arg "True_card.positions: class not present"
        else if from.(i) = c then i
        else go (i + 1)
      in
      go 0)
    wanted

(* Copy the key fields of group [id] selected by [pos] into [dst]. *)
let extract src id pos dst =
  for f = 0 to Array.length pos - 1 do
    dst.(f) <- GT.component src id pos.(f)
  done

let project c ~onto =
  if onto = c.classes then c
  else begin
    let pos = positions ~from:c.classes ~wanted:onto in
    let groups = GT.create ~arity:(Array.length onto) ~expected:(GT.groups c.groups) () in
    let dst = GT.scratch groups in
    GT.iter c.groups (fun id count ->
        extract c.groups id pos dst;
        GT.add_scratch groups count);
    { classes = onto; groups }
  end

let total c = GT.total c.groups

(* Base groups are keyed by raw column ids (every join column of the
   relation); per-subset localization projects onto the columns the
   subset's own edges mention and relabels them to local class ids.
   The row loop is the single hottest spot of Table 1: predicates run
   through a selection vector (one compaction pass per atom instead of
   a closure call per row), and each surviving row aggregates through
   the table's scratch key without allocating. *)
let base_compressed graph r =
  let relation = QG.relation graph r in
  let table = relation.QG.table in
  let classes = Array.of_list (QG.join_columns graph r) in
  let cols = Array.map (Storage.Table.column table) classes in
  let nfields = Array.length classes in
  let groups = GT.create ~arity:nfields ~expected:1024 () in
  let key = GT.scratch groups in
  let fill = Query.Predicate.compile_selector table relation.QG.preds in
  let nrows = Storage.Table.row_count table in
  let chunk = 4096 in
  let sel = Array.make chunk 0 in
  (* Per-class chunk views: flat columns are read in place (offset 0);
     compressed columns decode the current chunk into scratch, with the
     chunk start as the offset. Row [r]'s code is [arrs.(f).(r - offs.(f))]. *)
  let flat = Array.map Storage.Column.flat_view cols in
  let arrs =
    Array.map (function Some a -> a | None -> Array.make chunk 0) flat
  in
  let offs = Array.make (max nfields 1) 0 in
  let row = ref 0 in
  while !row < nrows do
    let stop = min nrows (!row + chunk) in
    for f = 0 to nfields - 1 do
      if flat.(f) = None then begin
        Storage.Column.decode_into cols.(f) ~row_start:!row ~len:(stop - !row)
          arrs.(f);
        offs.(f) <- !row
      end
    done;
    let m = fill sel !row stop in
    for k = 0 to m - 1 do
      let r = Array.unsafe_get sel k in
      for f = 0 to nfields - 1 do
        Array.unsafe_set key f
          (Array.unsafe_get
             (Array.unsafe_get arrs f)
             (r - Array.unsafe_get offs f))
      done;
      GT.add_scratch groups 1.0
    done;
    row := stop
  done;
  { classes; groups }

(* ------------------------------------------------------------------ *)
(* Join trees                                                          *)

(* A join tree over the relations of a subset: a maximum spanning tree of
   the "shared class count" graph. For acyclic (hyper)queries this
   satisfies the running-intersection property, which we verify; cyclic
   subsets fall back to pairwise joins. *)
module Join_tree = struct
  type node = {
    rel : int;
    mutable children : node list;
  }

  let shared_classes rel_classes r1 r2 =
    let c1, _ = rel_classes.(r1) and c2, _ = rel_classes.(r2) in
    let count =
      Array.fold_left (fun acc c -> if array_mem c c2 then acc + 1 else acc) 0 c1
    in
    let out = Array.make count 0 in
    let k = ref 0 in
    Array.iter
      (fun c ->
        if array_mem c c2 then begin
          out.(!k) <- c;
          incr k
        end)
      c1;
    out

  let n_shared rel_classes r1 r2 =
    let c1, _ = rel_classes.(r1) and c2, _ = rel_classes.(r2) in
    Array.fold_left (fun acc c -> if array_mem c c2 then acc + 1 else acc) 0 c1

  (* Maximum spanning tree (Prim) over the subset's relations, weights =
     number of shared classes. Returns the root node, or None when the
     subset is not join-connected through classes (cannot happen for
     connected query subsets). *)
  let build rel_classes members =
    match members with
    | [] -> invalid_arg "Join_tree.build: empty"
    | root_rel :: _ ->
        let nodes = Hashtbl.create (List.length members) in
        let node_of r =
          match Hashtbl.find_opt nodes r with
          | Some n -> n
          | None ->
              let n = { rel = r; children = [] } in
              Hashtbl.add nodes r n;
              n
        in
        let in_tree = ref [ root_rel ] in
        let out = ref (List.filter (fun r -> r <> root_rel) members) in
        let root = node_of root_rel in
        while !out <> [] do
          (* Best (weight, inside, outside) pair. *)
          let best = ref None in
          List.iter
            (fun o ->
              List.iter
                (fun i ->
                  let w = n_shared rel_classes i o in
                  if w > 0 then
                    match !best with
                    | Some (bw, _, _) when bw >= w -> ()
                    | _ -> best := Some (w, i, o))
                !in_tree)
            !out;
          match !best with
          | None -> invalid_arg "Join_tree.build: disconnected subset"
          | Some (_, i, o) ->
              let parent = node_of i in
              parent.children <- node_of o :: parent.children;
              in_tree := o :: !in_tree;
              out := List.filter (fun r -> r <> o) !out
        done;
        root

  (* Running intersection: for every class, the tree nodes whose relation
     mentions it must form a connected subtree. *)
  let running_intersection rel_classes root =
    let ok = ref true in
    let all_classes = Hashtbl.create 16 in
    let rec collect n =
      Array.iter
        (fun c -> Hashtbl.replace all_classes c ())
        (fst rel_classes.(n.rel));
      List.iter collect n.children
    in
    collect root;
    Hashtbl.iter
      (fun cls () ->
        (* Count connected components of nodes mentioning cls: walk the
           tree; a component starts at a mentioning node whose parent
           does not mention it. *)
        let components = ref 0 in
        let mentions r = array_mem cls (fst rel_classes.(r)) in
        let rec walk parent_mentions n =
          let m = mentions n.rel in
          if m && not parent_mentions then incr components;
          List.iter (walk m) n.children
        in
        walk false root;
        if !components > 1 then ok := false)
      all_classes;
    !ok
end

(* Yannakakis-style bottom-up counting over a join tree: linear in the
   sizes of the base groups, never materializing any joint distribution
   wider than a single relation's own key. *)
let count_acyclic rel_classes base_groups root =
  (* Multiplicity of group [id] of [g] after multiplying in every child
     subtree's message; 0.0 as soon as any child has no partners. *)
  let combined_weight g child_info id count =
    let w = ref count in
    List.iter
      (fun (pos, msg) ->
        if !w > 0.0 then begin
          extract g id pos (GT.scratch msg);
          w := !w *. GT.find_scratch msg
        end)
      child_info;
    !w
  in
  (* Message from the subtree rooted at [n], keyed by the classes shared
     with its parent [p]. *)
  let rec message (n : Join_tree.node) ~parent:p =
    let g = base_groups.(n.Join_tree.rel).groups in
    let classes = base_groups.(n.Join_tree.rel).classes in
    let child_info =
      List.map
        (fun (c : Join_tree.node) ->
          let shared =
            Join_tree.shared_classes rel_classes n.Join_tree.rel c.Join_tree.rel
          in
          let msg = message c ~parent:n.Join_tree.rel in
          (positions ~from:classes ~wanted:shared, msg))
        n.Join_tree.children
    in
    let out_pos =
      positions ~from:classes
        ~wanted:(Join_tree.shared_classes rel_classes n.Join_tree.rel p)
    in
    let out = GT.create ~arity:(Array.length out_pos) ~expected:256 () in
    GT.iter g (fun id count ->
        let w = combined_weight g child_info id count in
        if w > 0.0 then begin
          extract g id out_pos (GT.scratch out);
          GT.add_scratch out w
        end);
    out
  in
  let g = base_groups.(root.Join_tree.rel).groups in
  let classes = base_groups.(root.Join_tree.rel).classes in
  let child_info =
    List.map
      (fun (c : Join_tree.node) ->
        let shared =
          Join_tree.shared_classes rel_classes root.Join_tree.rel c.Join_tree.rel
        in
        let msg = message c ~parent:root.Join_tree.rel in
        (positions ~from:classes ~wanted:shared, msg))
      root.Join_tree.children
  in
  let scalar = ref 0.0 in
  GT.iter g (fun id count ->
      scalar := !scalar +. combined_weight g child_info id count);
  !scalar

(* Fallback for cyclic subsets (e.g. TPC-H Q5): left-deep pairwise joins
   of the compressed relations, projecting after every step onto the
   classes still referenced by the remaining relations. *)
let count_cyclic rel_classes base_groups members =
  match members with
  | [] -> invalid_arg "True_card.count_cyclic: empty"
  | first :: rest ->
      (* Join in an order that keeps every prefix connected. *)
      let order = ref [ first ] in
      let remaining = ref rest in
      while !remaining <> [] do
        let next =
          List.find
            (fun r ->
              List.exists
                (fun i -> Join_tree.n_shared rel_classes i r > 0)
                !order)
            !remaining
        in
        order := !order @ [ next ];
        remaining := List.filter (fun r -> r <> next) !remaining
      done;
      let order = !order in
      let classes_of rs =
        List.concat_map (fun r -> Array.to_list (fst rel_classes.(r))) rs
        |> List.sort_uniq compare |> Array.of_list
      in
      let filter_mem a keep =
        Array.of_list (List.filter (fun c -> array_mem c keep) (Array.to_list a))
      in
      let rec go acc = function
        | [] -> total acc
        | r :: rest ->
            let g = base_groups.(r) in
            let shared = filter_mem g.classes acc.classes in
            (* Classes still needed: mentioned by relations after r. *)
            let future = classes_of rest in
            let all =
              Array.of_list
                (List.sort_uniq compare
                   (Array.to_list acc.classes @ Array.to_list g.classes))
            in
            let out_classes = filter_mem all future in
            let keep (side : compressed) =
              Array.of_list
                (List.filter
                   (fun c -> array_mem c shared || array_mem c out_classes)
                   (Array.to_list side.classes))
            in
            let a = project acc ~onto:(keep acc) in
            let b = project g ~onto:(keep g) in
            let spa = positions ~from:a.classes ~wanted:shared in
            let spb = positions ~from:b.classes ~wanted:shared in
            (* Multimap from shared-key tuple to b's group ids. *)
            let index = Hashtbl.create (max 16 (GT.groups b.groups)) in
            GT.iter b.groups (fun id _ ->
                let sk = Array.make (Array.length spb) 0 in
                extract b.groups id spb sk;
                let prior =
                  match Hashtbl.find_opt index sk with Some l -> l | None -> []
                in
                Hashtbl.replace index sk (id :: prior));
            (* Where each output class comes from: a's key or b's key. *)
            let out_source =
              Array.map
                (fun c ->
                  let rec idx i arr =
                    if i >= Array.length arr then None
                    else if arr.(i) = c then Some i
                    else idx (i + 1) arr
                  in
                  match idx 0 a.classes with
                  | Some i -> `A i
                  | None -> `B (Option.get (idx 0 b.classes)))
                out_classes
            in
            let groups =
              GT.create ~arity:(Array.length out_classes)
                ~expected:(GT.groups a.groups) ()
            in
            let dst = GT.scratch groups in
            let sk = Array.make (Array.length spa) 0 in
            GT.iter a.groups (fun a_id a_count ->
                extract a.groups a_id spa sk;
                match Hashtbl.find_opt index sk with
                | None -> ()
                | Some partners ->
                    List.iter
                      (fun b_id ->
                        Array.iteri
                          (fun f src ->
                            dst.(f) <-
                              (match src with
                              | `A i -> GT.component a.groups a_id i
                              | `B i -> GT.component b.groups b_id i))
                          out_source;
                        GT.add_scratch groups (a_count *. GT.count b.groups b_id))
                      partners);
            go { classes = out_classes; groups } rest
      in
      let g0 = base_groups.(List.hd order) in
      go g0 (List.tl order)

(* ------------------------------------------------------------------ *)

(* domlint: safe [R1] — empty sentinel shared read-only, never grown *)
let empty_compressed =
  { classes = [||]; groups = GT.create ~arity:0 ~expected:1 () }

let compute graph =
  let n = QG.n_relations graph in
  let base_groups = Array.init n (base_compressed graph) in
  let subsets = QG.connected_subsets graph in
  let cards = Subset_table.create (Array.length subsets) in
  Array.iter
    (fun s ->
      let members = Bitset.to_list s in
      let card =
        match members with
        | [ r ] -> total base_groups.(r)
        | _ ->
            (* Classes from the edges inside this subset only. *)
            let rel_classes = Classes.build_subset graph s in
            (* Localize base groups: project onto the columns this
               subset's edges mention and relabel them to class ids. *)
            let local_groups = Array.make n empty_compressed in
            List.iter
              (fun r ->
                let class_ids, wanted_cols = rel_classes.(r) in
                let projected = project base_groups.(r) ~onto:wanted_cols in
                local_groups.(r) <- { projected with classes = class_ids })
              members;
            let root = Join_tree.build rel_classes members in
            if Join_tree.running_intersection rel_classes root then
              count_acyclic rel_classes local_groups root
            else count_cyclic rel_classes local_groups members
      in
      Subset_table.add cards s card)
    subsets;
  { graph; cards }

let card t s =
  match Subset_table.find_opt t.cards s with
  | Some c -> c
  | None ->
      invalid_arg
        (Format.asprintf "True_card.card: subset %a is not connected in %s"
           Bitset.pp s (QG.name t.graph))

let base t r = card t (Bitset.singleton r)

let estimator t =
  Estimator.of_function ~name:"true" ~base:(base t) (card t)

let subset_count t = Subset_table.length t.cards
