module Bitset = Util.Bitset
module QG = Query.Query_graph

(* Subset-keyed memo with Bitset's own int hash (the polymorphic hash
   would re-dispatch on every probe of the hottest table here). *)
module Subset_table = Hashtbl.Make (Bitset)

type t = {
  graph : QG.t;
  cards : float Subset_table.t;
}

(* ------------------------------------------------------------------ *)
(* Join-attribute equivalence classes                                  *)

(* Union-find over (relation, column) pairs connected by join edges. *)
module Classes = struct
  type uf = { parents : (int * int, int * int) Hashtbl.t }

  let rec find uf x =
    match Hashtbl.find_opt uf.parents x with
    | None -> x
    | Some p when p = x -> x
    | Some p ->
        let root = find uf p in
        Hashtbl.replace uf.parents x root;
        root

  let union uf a b =
    let ra = find uf a and rb = find uf b in
    if ra <> rb then Hashtbl.replace uf.parents ra rb

  let ensure uf x = if not (Hashtbl.mem uf.parents x) then Hashtbl.add uf.parents x x

  (* Per-relation (class_id, col) lists for one subset, derived from the
     join edges {e inside} that subset only. Using in-subset edges (not
     the whole query's transitive closure) matches the semantics of the
     executor and the enumerator: a subexpression applies exactly the
     join predicates whose both sides it contains. *)
  let build_subset graph s =
    let uf = { parents = Hashtbl.create 16 } in
    let in_subset (e : QG.edge) =
      Util.Bitset.mem e.QG.left s && Util.Bitset.mem e.QG.right s
    in
    let edges = List.filter in_subset (QG.edges graph) in
    List.iter
      (fun (e : QG.edge) ->
        let a = (e.QG.left, e.QG.left_col) and b = (e.QG.right, e.QG.right_col) in
        ensure uf a;
        ensure uf b;
        union uf a b)
      edges;
    let class_of_root = Hashtbl.create 16 in
    let next = ref 0 in
    let class_id pair =
      let root = find uf pair in
      match Hashtbl.find_opt class_of_root root with
      | Some id -> id
      | None ->
          let id = !next in
          incr next;
          Hashtbl.add class_of_root root id;
          id
    in
    let n = QG.n_relations graph in
    let rel_classes = Array.make n [] in
    List.iter
      (fun (e : QG.edge) ->
        List.iter
          (fun (r, col) ->
            let c = class_id (r, col) in
            if not (List.mem_assoc c rel_classes.(r)) then
              rel_classes.(r) <- (c, col) :: rel_classes.(r))
          [ (e.QG.left, e.QG.left_col); (e.QG.right, e.QG.right_col) ])
      edges;
    Array.iteri (fun r pairs -> rel_classes.(r) <- List.sort compare pairs) rel_classes;
    rel_classes
end

(* ------------------------------------------------------------------ *)
(* Compressed relations: multiplicity per join-class value tuple       *)

type compressed = {
  classes : int list; (* sorted class ids; key positions correspond *)
  groups : (int array, float) Hashtbl.t;
}

let positions ~from ~wanted =
  let arr = Array.of_list from in
  Array.of_list
    (List.map
       (fun c ->
         let rec go i =
           if i >= Array.length arr then
             invalid_arg "True_card.positions: class not present"
           else if arr.(i) = c then i
           else go (i + 1)
         in
         go 0)
       wanted)

let add_to tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some prior -> Hashtbl.replace tbl key (prior +. v)
  | None -> Hashtbl.add tbl key v

let project c ~onto =
  if onto = c.classes then c
  else begin
    let pos = positions ~from:c.classes ~wanted:onto in
    let groups = Hashtbl.create (Hashtbl.length c.groups) in
    Hashtbl.iter
      (fun key count -> add_to groups (Array.map (fun p -> key.(p)) pos) count)
      c.groups;
    { classes = onto; groups }
  end

let total c = Hashtbl.fold (fun _ n acc -> acc +. n) c.groups 0.0

(* Base groups are keyed by raw column ids (every join column of the
   relation); per-subset localization projects onto the columns the
   subset's own edges mention and relabels them to local class ids. *)
let base_compressed graph r =
  let relation = QG.relation graph r in
  let table = relation.QG.table in
  let pred = Query.Predicate.compile table relation.QG.preds in
  let classes = QG.join_columns graph r in
  let cols = Array.of_list classes in
  let col_data =
    Array.map (fun c -> (Storage.Table.column table c).Storage.Column.data) cols
  in
  let groups = Hashtbl.create 1024 in
  let nrows = Storage.Table.row_count table in
  for row = 0 to nrows - 1 do
    if pred row then
      add_to groups (Array.map (fun data -> data.(row)) col_data) 1.0
  done;
  { classes; groups }

(* ------------------------------------------------------------------ *)
(* Join trees                                                          *)

(* A join tree over the relations of a subset: a maximum spanning tree of
   the "shared class count" graph. For acyclic (hyper)queries this
   satisfies the running-intersection property, which we verify; cyclic
   subsets fall back to pairwise joins. *)
module Join_tree = struct
  type node = {
    rel : int;
    mutable children : node list;
  }

  let shared_classes rel_classes r1 r2 =
    let c2 = List.map fst rel_classes.(r2) in
    List.filter (fun (c, _) -> List.mem c c2) rel_classes.(r1) |> List.map fst

  (* Maximum spanning tree (Prim) over the subset's relations, weights =
     number of shared classes. Returns the root node, or None when the
     subset is not join-connected through classes (cannot happen for
     connected query subsets). *)
  let build rel_classes members =
    match members with
    | [] -> invalid_arg "Join_tree.build: empty"
    | root_rel :: _ ->
        let nodes = Hashtbl.create (List.length members) in
        let node_of r =
          match Hashtbl.find_opt nodes r with
          | Some n -> n
          | None ->
              let n = { rel = r; children = [] } in
              Hashtbl.add nodes r n;
              n
        in
        let in_tree = ref [ root_rel ] in
        let out = ref (List.filter (fun r -> r <> root_rel) members) in
        let root = node_of root_rel in
        while !out <> [] do
          (* Best (weight, inside, outside) pair. *)
          let best = ref None in
          List.iter
            (fun o ->
              List.iter
                (fun i ->
                  let w = List.length (shared_classes rel_classes i o) in
                  if w > 0 then
                    match !best with
                    | Some (bw, _, _) when bw >= w -> ()
                    | _ -> best := Some (w, i, o))
                !in_tree)
            !out;
          match !best with
          | None -> invalid_arg "Join_tree.build: disconnected subset"
          | Some (_, i, o) ->
              let parent = node_of i in
              parent.children <- node_of o :: parent.children;
              in_tree := o :: !in_tree;
              out := List.filter (fun r -> r <> o) !out
        done;
        root

  (* Running intersection: for every class, the tree nodes whose relation
     mentions it must form a connected subtree. *)
  let running_intersection rel_classes root =
    let ok = ref true in
    let all_classes = Hashtbl.create 16 in
    let rec collect n =
      List.iter (fun (c, _) -> Hashtbl.replace all_classes c ()) rel_classes.(n.rel);
      List.iter collect n.children
    in
    collect root;
    Hashtbl.iter
      (fun cls () ->
        (* Count connected components of nodes mentioning cls: walk the
           tree; a component starts at a mentioning node whose parent
           does not mention it. *)
        let components = ref 0 in
        let mentions r = List.exists (fun (c, _) -> c = cls) rel_classes.(r) in
        let rec walk parent_mentions n =
          let m = mentions n.rel in
          if m && not parent_mentions then incr components;
          List.iter (walk m) n.children
        in
        walk false root;
        if !components > 1 then ok := false)
      all_classes;
    !ok
end

(* Yannakakis-style bottom-up counting over a join tree: linear in the
   sizes of the base groups, never materializing any joint distribution
   wider than a single relation's own key. *)
let count_acyclic rel_classes base_groups root =
  (* Message from the subtree rooted at [n], keyed by the classes shared
     with [parent_rel] ([None] for the root: scalar total). *)
  let rec message (n : Join_tree.node) ~parent_rel =
    let g : compressed = base_groups.(n.Join_tree.rel) in
    let child_info =
      List.map
        (fun (c : Join_tree.node) ->
          let shared =
            Join_tree.shared_classes rel_classes n.Join_tree.rel c.Join_tree.rel
          in
          let msg = message c ~parent_rel:(Some n.Join_tree.rel) in
          (positions ~from:g.classes ~wanted:shared, msg))
        n.Join_tree.children
    in
    let out_pos =
      match parent_rel with
      | None -> [||]
      | Some p ->
          positions ~from:g.classes
            ~wanted:(Join_tree.shared_classes rel_classes n.Join_tree.rel p)
    in
    let out = Hashtbl.create 256 in
    let scalar = ref 0.0 in
    Hashtbl.iter
      (fun key count ->
        let weight = ref count in
        List.iter
          (fun (pos, (msg : (int array, float) Hashtbl.t)) ->
            if !weight > 0.0 then
              match Hashtbl.find_opt msg (Array.map (fun p -> key.(p)) pos) with
              | Some w -> weight := !weight *. w
              | None -> weight := 0.0)
          child_info;
        if !weight > 0.0 then
          match parent_rel with
          | None -> scalar := !scalar +. !weight
          | Some _ -> add_to out (Array.map (fun p -> key.(p)) out_pos) !weight)
      g.groups;
    match parent_rel with
    | None ->
        let result = Hashtbl.create 1 in
        Hashtbl.add result [||] !scalar;
        result
    | Some _ -> out
  in
  let result = message root ~parent_rel:None in
  match Hashtbl.find_opt result [||] with Some v -> v | None -> 0.0

(* Fallback for cyclic subsets (e.g. TPC-H Q5): left-deep pairwise joins
   of the compressed relations, projecting after every step onto the
   classes still referenced by the remaining relations. *)
let count_cyclic graph rel_classes base_groups members =
  match members with
  | [] -> invalid_arg "True_card.count_cyclic: empty"
  | first :: rest ->
      (* Join in an order that keeps every prefix connected. *)
      let order = ref [ first ] in
      let remaining = ref rest in
      while !remaining <> [] do
        let next =
          List.find
            (fun r ->
              List.exists
                (fun i ->
                  Join_tree.shared_classes rel_classes i r <> [])
                !order)
            !remaining
        in
        order := !order @ [ next ];
        remaining := List.filter (fun r -> r <> next) !remaining
      done;
      ignore graph;
      let order = !order in
      let classes_of rs =
        List.concat_map (fun r -> List.map fst rel_classes.(r)) rs
        |> List.sort_uniq compare
      in
      let rec go acc = function
        | [] -> total acc
        | r :: rest ->
            let g = base_groups.(r) in
            let shared =
              List.filter (fun c -> List.mem c acc.classes) g.classes
            in
            (* Classes still needed: mentioned by relations after r. *)
            let future = classes_of rest in
            let out_classes =
              List.filter
                (fun c -> List.mem c future)
                (List.sort_uniq compare (acc.classes @ g.classes))
            in
            let keep side =
              List.filter
                (fun c -> List.mem c shared || List.mem c out_classes)
                side.classes
            in
            let a = project acc ~onto:(keep acc) in
            let b = project g ~onto:(keep g) in
            let spa = positions ~from:a.classes ~wanted:shared in
            let spb = positions ~from:b.classes ~wanted:shared in
            let index = Hashtbl.create (Hashtbl.length b.groups) in
            Hashtbl.iter
              (fun key count ->
                let sk = Array.map (fun p -> key.(p)) spb in
                let prior =
                  match Hashtbl.find_opt index sk with Some l -> l | None -> []
                in
                Hashtbl.replace index sk ((key, count) :: prior))
              b.groups;
            let out_source =
              Array.of_list
                (List.map
                   (fun c ->
                     let rec idx i = function
                       | [] -> None
                       | x :: r -> if x = c then Some i else idx (i + 1) r
                     in
                     match idx 0 a.classes with
                     | Some i -> `A i
                     | None -> `B (Option.get (idx 0 b.classes)))
                   out_classes)
            in
            let groups = Hashtbl.create (Hashtbl.length a.groups) in
            Hashtbl.iter
              (fun a_key a_count ->
                let sk = Array.map (fun p -> a_key.(p)) spa in
                match Hashtbl.find_opt index sk with
                | None -> ()
                | Some partners ->
                    List.iter
                      (fun (b_key, b_count) ->
                        let out_key =
                          Array.map
                            (function `A i -> a_key.(i) | `B i -> b_key.(i))
                            out_source
                        in
                        add_to groups out_key (a_count *. b_count))
                      partners)
              a.groups;
            go { classes = out_classes; groups } rest
      in
      let g0 = base_groups.(List.hd order) in
      go g0 (List.tl order)

(* ------------------------------------------------------------------ *)

let compute graph =
  let n = QG.n_relations graph in
  let base_groups = Array.init n (base_compressed graph) in
  let subsets = QG.connected_subsets graph in
  let cards = Subset_table.create (Array.length subsets) in
  Array.iter
    (fun s ->
      let members = Bitset.to_list s in
      let card =
        match members with
        | [ r ] -> total base_groups.(r)
        | _ ->
            (* Classes from the edges inside this subset only. *)
            let rel_classes = Classes.build_subset graph s in
            (* Localize base groups: project onto the columns this
               subset's edges mention and relabel them to class ids. *)
            let local_groups = Array.make n { classes = []; groups = Hashtbl.create 0 } in
            List.iter
              (fun r ->
                let wanted_cols = List.map snd rel_classes.(r) in
                let projected = project base_groups.(r) ~onto:wanted_cols in
                local_groups.(r) <-
                  { projected with classes = List.map fst rel_classes.(r) })
              members;
            let root = Join_tree.build rel_classes members in
            if Join_tree.running_intersection rel_classes root then
              count_acyclic rel_classes local_groups root
            else count_cyclic graph rel_classes local_groups members
      in
      Subset_table.add cards s card)
    subsets;
  { graph; cards }

let card t s =
  match Subset_table.find_opt t.cards s with
  | Some c -> c
  | None ->
      invalid_arg
        (Format.asprintf "True_card.card: subset %a is not connected in %s"
           Bitset.pp s (QG.name t.graph))

let base t r = card t (Bitset.singleton r)

let estimator t =
  Estimator.of_function ~name:"true" ~base:(base t) (card t)

let subset_count t = Subset_table.length t.cards
