module QG = Query.Query_graph
module Bitset = Util.Bitset

type t = {
  sampled : Storage.Database.t;
  rates : (string, float) Hashtbl.t;
}

let subset_table prng rate table =
  let n = Storage.Table.row_count table in
  let keep = ref [] in
  for row = n - 1 downto 0 do
    if Util.Prng.chance prng rate then keep := row :: !keep
  done;
  let rows = Array.of_list !keep in
  let columns =
    Array.map
      (fun c -> Storage.Column.take c rows)
      (Storage.Table.columns table)
  in
  (* Preserve key metadata: adaptive probing executes index-nested-loop
     plans against the sample. *)
  let col_name i = Storage.Column.name (Storage.Table.column table i) in
  Storage.Table.create ~name:(Storage.Table.name table)
    ?pk:(Option.map col_name (Storage.Table.pk table))
    ~fks:(List.map col_name (Storage.Table.fks table))
    columns

let create ?(seed = 1729) ?(rate = 0.1) ?(dimension_threshold = 1000) db =
  let prng = Util.Prng.create seed in
  let sampled = Storage.Database.create () in
  let rates = Hashtbl.create 32 in
  List.iter
    (fun name ->
      let table = Storage.Database.find_table db name in
      let r =
        if Storage.Table.row_count table <= dimension_threshold then 1.0 else rate
      in
      Hashtbl.add rates name r;
      let t = if r >= 1.0 then table else subset_table prng r table in
      Storage.Database.add_table sampled t)
    (Storage.Database.table_names db);
  { sampled; rates }

let sampling_rate t name =
  match Hashtbl.find_opt t.rates name with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Join_sample.sampling_rate: unknown table %s" name)

let sampled_db t = t.sampled

(* Rebind the query graph's relations against the sampled tables; the
   predicates reference column indexes, which are identical, and
   dictionary codes are shared with the original columns (the sample
   copies columns, dictionaries included), so predicates transfer
   as-is. *)
let rebind t graph =
  let relations =
    Array.map
      (fun (r : QG.relation) ->
        {
          r with
          QG.table =
            Storage.Database.find_table t.sampled (Storage.Table.name r.QG.table);
        })
      (QG.relations graph)
  in
  QG.create ~name:(QG.name graph ^ "-sample") relations (QG.edges graph)

let scale t graph s =
  Bitset.fold
    (fun r acc ->
      acc /. sampling_rate t (Storage.Table.name (QG.relation graph r).QG.table))
    s 1.0

let estimator t graph =
  let sampled_graph = rebind t graph in
  let counts = True_card.compute sampled_graph in
  let scale s = scale t graph s in
  let subset s =
    let sampled_count = True_card.card counts s in
    let factor = scale s in
    if sampled_count > 0.0 then sampled_count *. factor
    else
      (* Zero sampled rows: the sample cannot resolve below one row per
         scale factor; report the resolution limit, clamped to >= 1. *)
      Float.max 1.0 (0.5 *. factor)
  in
  Estimator.of_function ~name:"join sampling" ~base:(fun r -> subset (Bitset.singleton r)) subset
