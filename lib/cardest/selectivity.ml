module P = Query.Predicate
module CS = Dbstats.Column_stats

type magic = {
  like_contains : float;
  like_prefix : float;
  default_range : float;
}

let pg_magic = { like_contains = 0.005; like_prefix = 0.02; default_range = 0.333 }

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

(* Mass available to non-MCV, non-NULL values. *)
let leftover (stats : CS.t) =
  clamp01 (1.0 -. CS.mcv_fraction_total stats -. stats.CS.null_fraction)

let eq_unseen (stats : CS.t) =
  let n_mcv = float_of_int (Array.length stats.CS.mcv) in
  let d = Float.max 1.0 (stats.CS.distinct_sampled -. n_mcv) in
  clamp01 (leftover stats /. d)

let eq_selectivity (stats : CS.t) code =
  if code < 0 then eq_unseen stats (* constant absent from the dictionary *)
  else
    match CS.mcv_find stats code with
    | Some f -> f
    | None -> eq_unseen stats

let cmp_int v op c =
  match (op : P.cmp) with
  | P.Eq -> v = c
  | P.Ne -> v <> c
  | P.Lt -> v < c
  | P.Le -> v <= c
  | P.Gt -> v > c
  | P.Ge -> v >= c

(* Order comparison in rank space: histogram mass (scaled to the non-MCV
   leftover) plus the MCV entries that satisfy the operator. *)
let rank_cmp_selectivity (stats : CS.t) ~magic ~rank_of_code op rank_const =
  let hist_part =
    match stats.CS.histogram with
    | None -> magic.default_range
    | Some h -> Dbstats.Histogram.cmp_selectivity h op rank_const
  in
  let mcv_part =
    Array.fold_left
      (fun acc (code, f) ->
        if cmp_int (rank_of_code code) op rank_const then acc +. f else acc)
      0.0 stats.CS.mcv
  in
  clamp01 ((hist_part *. leftover stats) +. mcv_part)

let rec atom ~stats ~table ~magic (a : P.atom) =
  match a with
  | P.Const_false -> eq_unseen stats
  | P.Cmp { op = P.Eq; code; _ } -> eq_selectivity stats code
  | P.Cmp { op = P.Ne; code; _ } ->
      clamp01 (1.0 -. eq_selectivity stats code -. stats.CS.null_fraction)
  | P.Cmp { op; code; col } ->
      let column = Storage.Table.column table col in
      let rank_of_code c = CS.rank stats c in
      let rank_const =
        match Storage.Column.dict column with
        | None -> code
        | Some _ -> if code < 0 then 0 else CS.rank stats code
      in
      rank_cmp_selectivity stats ~magic ~rank_of_code op rank_const
  | P.Str_cmp { op; value; col } ->
      let column = Storage.Table.column table col in
      let rank_const = CS.rank_of_string stats column value in
      (* The constant sits between ranks; treat op uniformly on ranks. *)
      rank_cmp_selectivity stats ~magic ~rank_of_code:(CS.rank stats) op
        (match op with P.Lt | P.Le -> rank_const - 1 | _ -> rank_const)
  | P.Between { lo; hi; _ } ->
      let ge =
        rank_cmp_selectivity stats ~magic ~rank_of_code:(fun c -> c) P.Ge lo
      in
      let gt_hi =
        rank_cmp_selectivity stats ~magic ~rank_of_code:(fun c -> c) P.Gt hi
      in
      clamp01 (ge -. gt_hi)
  | P.In { codes; _ } ->
      clamp01 (List.fold_left (fun acc c -> acc +. eq_selectivity stats c) 0.0 codes)
  | P.Like { pattern; negated; _ } ->
      let s =
        if Query.Like_match.is_prefix_pattern pattern then magic.like_prefix
        else magic.like_contains
      in
      if negated then clamp01 (1.0 -. s) else s
  | P.Is_null { negated; _ } ->
      if negated then clamp01 (1.0 -. stats.CS.null_fraction)
      else stats.CS.null_fraction
  | P.Or atoms ->
      (* s1 + s2 - s1*s2, folded left to right. *)
      List.fold_left
        (fun acc a ->
          let s = atom ~stats ~table ~magic a in
          acc +. s -. (acc *. s))
        0.0 atoms

let conjunction ~stats_of ~table ~magic preds =
  List.fold_left
    (fun acc a ->
      match P.atom_column a with
      | Some col -> acc *. atom ~stats:(stats_of col) ~table ~magic a
      | None -> acc *. 1e-7)
    1.0 preds
