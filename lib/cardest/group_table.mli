(** Allocation-free multiset of fixed-arity integer tuples with float
    multiplicities — the aggregation kernel behind {!True_card}.

    Probes allocate nothing: the caller fills the table's reusable
    {!scratch} key and calls {!add_scratch} / {!find_scratch}. Keys of
    arity <= 2 are packed into a single non-negative int; the first
    value that does not fit migrates the table to an interning arena
    (flat [int array], one slice per distinct key). Groups are numbered
    densely in insertion order, so {!iter} is deterministic and
    multiplicities live in a plain float array. *)

type t

val create : ?expected:int -> arity:int -> unit -> t
(** [expected] is a hint for the number of distinct keys. *)

val arity : t -> int

val groups : t -> int
(** Number of distinct keys inserted so far. *)

val scratch : t -> int array
(** The table's reusable key buffer, of length [max 1 arity]. Fill
    components [0 .. arity-1] before calling {!add_scratch} or
    {!find_scratch}. Never retained by the table. *)

val add_scratch : t -> float -> unit
(** Add [delta] to the multiplicity of the scratch key (inserting it
    with multiplicity [delta] when absent). *)

val find_scratch : t -> float
(** Multiplicity of the scratch key, 0.0 when absent (multiplicities
    are strictly positive by construction). *)

val count : t -> int -> float
(** Multiplicity of group [id], [0 <= id < groups t]. *)

val component : t -> int -> int -> int
(** [component t id f] is field [f] of group [id]'s key. *)

val iter : t -> (int -> float -> unit) -> unit
(** Iterate groups in insertion order: [f id count]. *)

val total : t -> float
(** Sum of all multiplicities. *)

val is_packed : t -> bool
(** Whether the table still uses the single-word packed representation
    (exposed for tests). *)

(** Packed-key encoding, exposed for tests. Encoded values and packed
    pairs are always non-negative, and [null_code] round-trips through
    slot 0. *)
module Packed : sig
  val encode : int -> int
  (** Shift a column code into its non-negative encoding; NULL -> 0.
      Only valid when {!fits}. *)

  val decode : int -> int

  val fits : int -> bool
  (** Encodable as a single-field key: NULL or [0 <= v < max_int]. *)

  val fits2 : int -> bool
  (** Encodable into one 31-bit field of a packed pair. *)

  val pack2 : int -> int -> int

  val unpack2_fst : int -> int

  val unpack2_snd : int -> int
end
